//! The longitudinal store: a sequence of daily (or weekly) snapshots with
//! per-registrar time-series extraction and CSV export — the substrate for
//! Figures 4–8.

use dsec_ecosystem::{SimDate, Tld};

use crate::snapshot::{OperatorStats, Snapshot};

/// A point on a time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Date of the snapshot.
    pub date: SimDate,
    /// Aggregate at that date.
    pub stats: OperatorStats,
}

impl SeriesPoint {
    /// Domains whose served state was actually observed this snapshot:
    /// the denominator of the deployment fractions. Unreachable and
    /// indeterminate domains carry no evidence either way, so counting
    /// them would deflate every Figure 4–8 curve whenever the fault plane
    /// degrades a scan.
    pub fn observed(&self) -> u64 {
        self.stats.domains - self.stats.unobserved()
    }

    /// Fraction of observed domains with a DNSKEY.
    pub fn dnskey_fraction(&self) -> f64 {
        ratio(self.stats.with_dnskey, self.observed())
    }

    /// Fraction of observed domains fully deployed (DNSKEY **and**
    /// matching DS) — the y-axis of Figures 4–7.
    pub fn full_fraction(&self) -> f64 {
        ratio(self.stats.fully_deployed, self.observed())
    }

    /// Of the domains with DNSKEY, the fraction that also have a DS — the
    /// top panel of Figure 8.
    pub fn ds_given_dnskey(&self) -> f64 {
        ratio(self.stats.with_ds, self.stats.with_dnskey)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An append-only sequence of snapshots.
#[derive(Debug, Default)]
pub struct LongitudinalStore {
    snapshots: Vec<Snapshot>,
}

impl LongitudinalStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot (dates must be non-decreasing).
    pub fn record(&mut self, snapshot: Snapshot) {
        if let Some(last) = self.snapshots.last() {
            assert!(
                last.date <= snapshot.date,
                "snapshots must be appended in date order"
            );
        }
        self.snapshots.push(snapshot);
    }

    /// All snapshots, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.snapshots.last()
    }

    /// The time series of one operator over the given TLDs.
    pub fn series(&self, operator: &str, tlds: &[Tld]) -> Vec<SeriesPoint> {
        self.snapshots
            .iter()
            .map(|s| SeriesPoint {
                date: s.date,
                stats: s.operator_totals(operator, tlds),
            })
            .collect()
    }

    /// The per-TLD aggregate series (Table 1 over time).
    pub fn tld_series(&self, tld: Tld) -> Vec<SeriesPoint> {
        self.snapshots
            .iter()
            .map(|s| SeriesPoint {
                date: s.date,
                stats: s.tld_totals(tld),
            })
            .collect()
    }

    /// One row per (snapshot, TLD the operator was ever seen in): the
    /// operator's cell for that day, or an explicit all-zero cell on days
    /// the operator has no domains there. The zero rows keep the series
    /// rectangular — a day with no cell is real data (count zero), not a
    /// gap downstream plotting should interpolate over.
    fn rows(&self, operator: &str) -> Vec<(SimDate, Tld, OperatorStats)> {
        let mut tlds: Vec<Tld> = Vec::new();
        for snapshot in &self.snapshots {
            for (op, tld) in snapshot.cells.keys() {
                if op == operator && !tlds.contains(tld) {
                    tlds.push(*tld);
                }
            }
        }
        tlds.sort();
        let mut rows = Vec::with_capacity(self.snapshots.len() * tlds.len());
        for snapshot in &self.snapshots {
            for &tld in &tlds {
                let stats = snapshot
                    .cells
                    .get(&(operator.to_string(), tld))
                    .copied()
                    .unwrap_or_default();
                rows.push((snapshot.date, tld, stats));
            }
        }
        rows
    }

    /// CSV of one operator's series, one row per (snapshot, TLD the
    /// operator was ever seen in — all-zero rows fill days without cells):
    /// `date,operator,tld,domains,with_dnskey,with_ds,full,partial,misconfigured`.
    pub fn to_csv(&self, operator: &str) -> String {
        let mut out = String::from(
            "date,operator,tld,domains,with_dnskey,with_ds,fully_deployed,partially_deployed,misconfigured\n",
        );
        for (date, tld, stats) in self.rows(operator) {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                date,
                operator,
                tld.label(),
                stats.domains,
                stats.with_dnskey,
                stats.with_ds,
                stats.fully_deployed,
                stats.partially_deployed,
                stats.misconfigured,
            ));
        }
        out
    }

    /// Degradation-aware CSV: [`LongitudinalStore::to_csv`]'s columns
    /// plus `unreachable,indeterminate` — the per-cell counts of domains
    /// that could not be observed that day. Kept as a separate export so
    /// downstream consumers of the original column layout are unaffected.
    pub fn to_csv_extended(&self, operator: &str) -> String {
        let mut out = String::from(
            "date,operator,tld,domains,with_dnskey,with_ds,fully_deployed,partially_deployed,misconfigured,unreachable,indeterminate\n",
        );
        for (date, tld, stats) in self.rows(operator) {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                date,
                operator,
                tld.label(),
                stats.domains,
                stats.with_dnskey,
                stats.with_ds,
                stats.fully_deployed,
                stats.partially_deployed,
                stats.misconfigured,
                stats.unreachable,
                stats.indeterminate,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snapshot(day: u32, dnskey: u64, ds: u64) -> Snapshot {
        let mut cells = BTreeMap::new();
        cells.insert(
            ("op.net".to_string(), Tld::Com),
            OperatorStats {
                domains: 100,
                with_dnskey: dnskey,
                with_ds: ds,
                fully_deployed: ds,
                partially_deployed: dnskey - ds,
                ..OperatorStats::default()
            },
        );
        Snapshot {
            date: SimDate(day),
            cells,
        }
    }

    #[test]
    fn series_extraction() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot(0, 10, 5));
        store.record(snapshot(7, 20, 10));
        let series = store.series("op.net", &[Tld::Com]);
        assert_eq!(series.len(), 2);
        assert!((series[0].dnskey_fraction() - 0.10).abs() < 1e-9);
        assert!((series[1].dnskey_fraction() - 0.20).abs() < 1e-9);
        assert!((series[1].ds_given_dnskey() - 0.50).abs() < 1e-9);
        assert!((series[1].full_fraction() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn missing_operator_yields_zero_points() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot(0, 10, 5));
        let series = store.series("ghost.net", &[Tld::Com]);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].stats.domains, 0);
        assert_eq!(series[0].dnskey_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "date order")]
    fn out_of_order_snapshots_rejected() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot(7, 1, 1));
        store.record(snapshot(0, 1, 1));
    }

    #[test]
    fn csv_export_shape() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot(0, 10, 5));
        let csv = store.to_csv("op.net");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("date,operator,tld"));
        assert_eq!(lines[1], "2015-01-01,op.net,com,100,10,5,5,5,0");
    }

    #[test]
    fn extended_csv_appends_degradation_columns() {
        let mut store = LongitudinalStore::new();
        let mut snap = snapshot(0, 10, 5);
        let stats = snap
            .cells
            .get_mut(&("op.net".to_string(), Tld::Com))
            .unwrap();
        stats.unreachable = 3;
        stats.indeterminate = 1;
        store.record(snap);
        let csv = store.to_csv_extended("op.net");
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with("misconfigured,unreachable,indeterminate"));
        assert_eq!(lines[1], "2015-01-01,op.net,com,100,10,5,5,5,0,3,1");
        // The legacy export is unchanged by the new fields.
        assert_eq!(
            store.to_csv("op.net").lines().nth(1).unwrap(),
            "2015-01-01,op.net,com,100,10,5,5,5,0"
        );
    }

    #[test]
    fn fractions_divide_by_observed_domains_only() {
        // 100 domains, 20 unobserved (12 unreachable + 8 indeterminate),
        // 40 of the 80 observed have a DNSKEY and 20 are fully deployed.
        let mut store = LongitudinalStore::new();
        let mut snap = snapshot(0, 40, 20);
        let stats = snap
            .cells
            .get_mut(&("op.net".to_string(), Tld::Com))
            .unwrap();
        stats.unreachable = 12;
        stats.indeterminate = 8;
        store.record(snap);
        let point = store.series("op.net", &[Tld::Com])[0];
        assert_eq!(point.observed(), 80);
        // 40/80, not 40/100: unobserved domains carry no evidence.
        assert!((point.dnskey_fraction() - 0.5).abs() < 1e-9);
        assert!((point.full_fraction() - 0.25).abs() < 1e-9);
        // DS|DNSKEY is within the observed subpopulation already.
        assert!((point.ds_given_dnskey() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fully_unobserved_point_has_zero_fractions() {
        let mut store = LongitudinalStore::new();
        let mut snap = snapshot(0, 0, 0);
        let stats = snap
            .cells
            .get_mut(&("op.net".to_string(), Tld::Com))
            .unwrap();
        stats.unreachable = 100;
        store.record(snap);
        let point = store.series("op.net", &[Tld::Com])[0];
        assert_eq!(point.observed(), 0);
        assert_eq!(point.dnskey_fraction(), 0.0);
        assert_eq!(point.full_fraction(), 0.0);
    }

    #[test]
    fn csv_fills_operator_gaps_with_zero_rows() {
        // Day 0: op.net has cells in com and net. Day 7: only com — the
        // net row must still appear, explicitly zero.
        let mut store = LongitudinalStore::new();
        let mut first = snapshot(0, 10, 5);
        first.cells.insert(
            ("op.net".to_string(), Tld::Net),
            OperatorStats {
                domains: 7,
                ..OperatorStats::default()
            },
        );
        store.record(first);
        store.record(snapshot(7, 12, 6));
        let csv = store.to_csv("op.net");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 2 TLDs × 2 snapshots");
        assert_eq!(lines[2], "2015-01-01,op.net,net,7,0,0,0,0,0");
        assert_eq!(lines[4], "2015-01-08,op.net,net,0,0,0,0,0,0");
        let extended: Vec<String> = store
            .to_csv_extended("op.net")
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(extended.len(), 5);
        assert_eq!(extended[4], "2015-01-08,op.net,net,0,0,0,0,0,0,0,0");
    }

    #[test]
    fn latest_and_tld_series() {
        let mut store = LongitudinalStore::new();
        assert!(store.latest().is_none());
        store.record(snapshot(0, 10, 5));
        store.record(snapshot(1, 12, 6));
        assert_eq!(store.latest().unwrap().date, SimDate(1));
        let tld_series = store.tld_series(Tld::Com);
        assert_eq!(tld_series.len(), 2);
        assert_eq!(tld_series[1].stats.with_dnskey, 12);
    }
}
