//! # dsec-scanner — the OpenINTEL-equivalent measurement pipeline
//!
//! Reproduces the paper's data-collection methodology (§4): enumerate
//! every second-level domain from each TLD zone, read its NS and DS sets
//! from that zone, fetch its DNSKEY RRset and RRSIGs with a DNSSEC-OK
//! query to the delegated nameservers, classify the deployment state, and
//! aggregate per (DNS operator, TLD). Operators are identified by the
//! second-level domain of the NS records with the paper's special-case
//! rules ([`operator_id`]).
//!
//! [`snapshot::Snapshot`] is one day's scan; [`store::LongitudinalStore`]
//! holds the 21-month sequence the figures are drawn from;
//! [`scan_campaign`] drives a whole measurement window.

#![warn(missing_docs)]

pub mod cache;
pub mod operator_id;
pub mod poison_census;
pub mod rollover_census;
pub mod snapshot;
pub mod store;
pub mod stream;
pub mod takeover_census;

pub use cache::{domain_key, CacheStats, DomainKey, ScanCache};
pub use operator_id::{operator_key, operator_of};
pub use poison_census::{poison_census, poison_census_table, RegistrarPoisonStats};
pub use rollover_census::{rollover_census, rollover_census_table, OperatorRolloverStats};
pub use snapshot::{
    coverage_curve, operators_to_cover, Metric, OperatorStats, ScanOptions, Snapshot,
};
pub use store::{LongitudinalStore, SeriesPoint};
pub use stream::{scan_campaign_streamed, SnapshotWriter, StreamedStore};
pub use takeover_census::{takeover_census, takeover_census_table, RegistrarTakeoverStats};

use dsec_ecosystem::{SimDate, Tld, World, ALL_TLDS};

/// Campaign parameters for [`scan_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Last day to scan (inclusive).
    pub until: SimDate,
    /// Days between snapshots (1 = daily like OpenINTEL; 7 keeps the full
    /// 21-month window tractable at population scale).
    pub interval_days: u32,
    /// TLDs to scan.
    pub tlds: Vec<Tld>,
    /// Scan worker threads per snapshot (1 = inline).
    pub threads: usize,
    /// NS-rotation rounds for re-scanning failed domains (≥ 1 re-scans,
    /// 0 disables the retry pass; irrelevant while the fault plane is
    /// off).
    pub retry_rounds: u32,
    /// Bound on the per-snapshot retry queue.
    pub retry_limit: usize,
    /// Reuse per-domain results across snapshots via a [`ScanCache`]
    /// (generation-checked; see the cache module docs). On by default —
    /// with faults off the output is byte-identical to the uncached
    /// campaign.
    pub use_cache: bool,
}

impl CampaignConfig {
    /// Scan all five TLDs every `interval_days` until `until`.
    pub fn new(until: SimDate, interval_days: u32) -> Self {
        let defaults = ScanOptions::default();
        CampaignConfig {
            until,
            interval_days: interval_days.max(1),
            tlds: ALL_TLDS.to_vec(),
            threads: 1,
            retry_rounds: defaults.retry_rounds,
            retry_limit: defaults.retry_limit,
            use_cache: true,
        }
    }

    /// Fan the per-snapshot scan out over `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Tune the failed-domain retry pass.
    pub fn with_retries(mut self, rounds: u32, limit: usize) -> Self {
        self.retry_rounds = rounds;
        self.retry_limit = limit;
        self
    }

    /// Enable or disable cross-snapshot result caching.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    fn scan_options(&self) -> ScanOptions {
        ScanOptions {
            threads: self.threads,
            retry_rounds: self.retry_rounds,
            retry_limit: self.retry_limit,
            force_full: false,
        }
    }
}

/// Advances the world day by day until `config.until`, taking a snapshot
/// every `interval_days`. Returns the longitudinal store.
///
/// The world is borrowed mutably because time advances; each snapshot is
/// a pure read (real queries against the then-current zones).
pub fn scan_campaign(world: &mut World, config: &CampaignConfig) -> LongitudinalStore {
    if config.use_cache {
        let mut cache = ScanCache::new();
        scan_campaign_cached(world, config, &mut cache)
    } else {
        let mut store = LongitudinalStore::new();
        let options = config.scan_options();
        run_campaign(world, config, |world| {
            Snapshot::take_with_options(world, &config.tlds, &options)
        }, &mut store);
        store
    }
}

/// [`scan_campaign`] with a caller-owned [`ScanCache`], so the cache can
/// be carried across campaigns (warm restarts) and its hit/miss counters
/// inspected afterwards.
pub fn scan_campaign_cached(
    world: &mut World,
    config: &CampaignConfig,
    cache: &mut ScanCache,
) -> LongitudinalStore {
    let mut store = LongitudinalStore::new();
    let options = config.scan_options();
    run_campaign(world, config, |world| {
        Snapshot::take_cached(world, &config.tlds, &options, cache)
    }, &mut store);
    store
}

fn run_campaign(
    world: &mut World,
    config: &CampaignConfig,
    mut take: impl FnMut(&World) -> Snapshot,
    store: &mut LongitudinalStore,
) {
    world.begin_scan_epoch();
    store.record(take(world));
    while world.today < config.until {
        for _ in 0..config.interval_days {
            if world.today >= config.until {
                break;
            }
            world.tick();
        }
        // Each snapshot is a fresh scan epoch: fault-plane attempt
        // counters are pruned so campaign length doesn't grow state (or
        // skew per-snapshot draws).
        world.begin_scan_epoch();
        store.record(take(world));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_workloads::{build, PopulationConfig};

    #[test]
    fn campaign_over_tiny_population() {
        let mut pw = build(&PopulationConfig::tiny());
        let start = pw.world.today;
        let store = scan_campaign(
            &mut pw.world,
            &CampaignConfig::new(start.plus_days(21), 7),
        );
        assert_eq!(store.snapshots().len(), 4); // day 0, 7, 14, 21
        assert_eq!(pw.world.today, start.plus_days(21));
        // Every snapshot covers the whole population.
        let expected = pw.world.domain_count() as u64;
        for snapshot in store.snapshots() {
            let total: u64 = ALL_TLDS
                .iter()
                .map(|&t| snapshot.tld_totals(t).domains)
                .sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn snapshot_classification_is_consistent() {
        let pw = build(&PopulationConfig::tiny());
        let snapshot = Snapshot::take(&pw.world);
        for stats in snapshot.cells.values() {
            assert!(stats.with_dnskey <= stats.domains);
            assert!(stats.partially_deployed <= stats.with_dnskey);
            assert!(
                stats.fully_deployed + stats.partially_deployed + stats.misconfigured
                    <= stats.with_dnskey
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let pw = build(&PopulationConfig::tiny());
        let sequential = Snapshot::take_with_threads(&pw.world, &ALL_TLDS, 1);
        let parallel = Snapshot::take_with_threads(&pw.world, &ALL_TLDS, 4);
        assert_eq!(parallel.cells, sequential.cells);
        assert_eq!(parallel.date, sequential.date);
    }

    #[test]
    fn operator_grouping_matches_registrar_ns_domains() {
        let pw = build(&PopulationConfig::tiny());
        let snapshot = Snapshot::take(&pw.world);
        // GoDaddy's domains must group under domaincontrol.com.
        let gd = snapshot.operator_totals("domaincontrol.com.", &ALL_TLDS);
        assert!(gd.domains > 0, "GoDaddy cell exists");
    }
}
