//! Per-registrar takeover census.
//!
//! The attack plane logs every channel compromise unconditionally
//! (`dsec_ecosystem::events`): forged DS/NS acceptances, repelled
//! attempts, detections, remediations. This module joins that log with
//! two *observable* signals a real-world scanner could measure without
//! any event log at all — a registry DS that matches none of the served
//! DNSKEYs, and a delegation NS set that drifted away from what the
//! domain's hosting arrangement should publish — and tallies both views
//! under the registrar the domain was bought from. That attribution is
//! the paper's through-line: the registrar's channel policy, not the
//! zone operator, decides whether a forgery lands.

use std::collections::BTreeMap;

use dsec_dnssec::ds_matches;
use dsec_ecosystem::{Event, World};
use dsec_wire::Name;

/// Takeover-related tallies for one registrar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrarTakeoverStats {
    /// Forged-email DS updates the channel accepted.
    pub forged_ds_accepted: u64,
    /// Forged-email NS redelegations the channel accepted.
    pub forged_ns_accepted: u64,
    /// Takeover attempts the channel authentication repelled.
    pub attacks_repelled: u64,
    /// Hijacks noticed (monitoring / registrant report).
    pub hijacks_detected: u64,
    /// Hijacks rolled back to the pre-attack DS/NS state.
    pub hijacks_remediated: u64,
    /// Live observation: domains whose registry DS matches none of the
    /// DNSKEYs currently served (the scanner-visible DS/DNSKEY
    /// mismatch a forged-DS capture leaves behind).
    pub ds_dnskey_mismatch: u64,
    /// Live observation: domains whose delegation NS set differs from
    /// what their hosting arrangement should publish (the NS drift a
    /// forged redelegation leaves behind).
    pub ns_drift: u64,
}

impl RegistrarTakeoverStats {
    /// Forgeries that got through the channel, either vector.
    pub fn captures(&self) -> u64 {
        self.forged_ds_accepted + self.forged_ns_accepted
    }

    /// Captures not yet rolled back.
    pub fn outstanding(&self) -> u64 {
        self.captures().saturating_sub(self.hijacks_remediated)
    }
}

/// The registrar display name a domain attributes to, or `"(unknown)"`
/// for domains that have left the world.
fn registrar_key_of(world: &World, domain: &Name) -> String {
    world
        .domain(domain)
        .map(|d| world.registrar(d.registrar).name.clone())
        .unwrap_or_else(|| "(unknown)".into())
}

/// Builds the census: tallies the always-logged attack-lifecycle events
/// under each victim's registrar, then sweeps every registered domain
/// for the two live takeover signatures (DS/DNSKEY mismatch, NS drift).
/// Deterministic and threading-independent — the log is single-writer
/// and the sweep reads a consistent world.
pub fn takeover_census(world: &World) -> BTreeMap<String, RegistrarTakeoverStats> {
    let mut census: BTreeMap<String, RegistrarTakeoverStats> = BTreeMap::new();
    for (_, event) in world.events.entries() {
        let (domain, apply): (&Name, fn(&mut RegistrarTakeoverStats)) = match event {
            Event::ForgedEmailAccepted { domain, .. } => (domain, |s| s.forged_ds_accepted += 1),
            Event::ForgedNsAccepted { domain, .. } => (domain, |s| s.forged_ns_accepted += 1),
            Event::AttackRepelled { domain } => (domain, |s| s.attacks_repelled += 1),
            Event::HijackDetected { domain } => (domain, |s| s.hijacks_detected += 1),
            Event::HijackRemediated { domain } => (domain, |s| s.hijacks_remediated += 1),
            _ => continue,
        };
        apply(census.entry(registrar_key_of(world, domain)).or_default());
    }

    for d in world.domains() {
        let registry = world.registry(d.tld);
        let ds_set = registry.ds_of(&d.name);
        let mismatch = !ds_set.is_empty() && {
            let served = world.served_dnskeys(&d.name);
            !ds_set.iter().any(|ds| {
                served
                    .iter()
                    .any(|k| ds_matches(&d.name, k, ds) == Some(true))
            })
        };
        let drift = match world.expected_ns_hosts(&d.name) {
            Some(expected) => {
                let actual = registry.ns_of(&d.name);
                !actual.is_empty() && {
                    let mut a = actual.clone();
                    let mut e = expected.clone();
                    a.sort();
                    e.sort();
                    a != e
                }
            }
            None => false,
        };
        if mismatch || drift {
            let entry = census
                .entry(world.registrar(d.registrar).name.clone())
                .or_default();
            if mismatch {
                entry.ds_dnskey_mismatch += 1;
            }
            if drift {
                entry.ns_drift += 1;
            }
        }
    }
    census
}

/// Renders the census as a fixed-width table, one registrar per row,
/// sorted by capture volume (ties by name). Empty input renders a
/// single explanatory line.
pub fn takeover_census_table(census: &BTreeMap<String, RegistrarTakeoverStats>) -> String {
    if census.is_empty() {
        return "no takeover activity observed\n".into();
    }
    let mut rows: Vec<(&String, &RegistrarTakeoverStats)> = census.iter().collect();
    rows.sort_by(|a, b| {
        b.1.captures()
            .cmp(&a.1.captures())
            .then_with(|| a.0.cmp(b.0))
    });
    let mut out = String::from(
        "registrar             forged-ds  forged-ns  repelled  detected  remediated  ds-mismatch  ns-drift\n",
    );
    for (reg, s) in rows {
        out.push_str(&format!(
            "{reg:<20} {:>10} {:>10} {:>9} {:>9} {:>11} {:>12} {:>9}\n",
            s.forged_ds_accepted,
            s.forged_ns_accepted,
            s.attacks_repelled,
            s.hijacks_detected,
            s.hijacks_remediated,
            s.ds_dnskey_mismatch,
            s.ns_drift,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_ecosystem::{
        DsSubmission, ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy,
        TldRole, UploadOutcome, WorldConfig, ALL_TLDS,
    };

    fn lax_world() -> (World, Name) {
        let mut w = World::new(WorldConfig {
            key_pool: 2,
            ..WorldConfig::default()
        });
        let policy = RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Email {
                verifies_sender: false,
                accepts_foreign_sender: false,
                validates: false,
            },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        };
        let r = w.add_registrar("LaxMail", Name::parse("laxmail.net").unwrap(), policy);
        let v = w
            .purchase(r, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
            .unwrap();
        let ds = w.owner_sign_zone(&v).unwrap();
        let ok = w
            .upload_ds(
                &v,
                ds,
                DsSubmission::Email {
                    claimed_from: "owner@victim.com".into(),
                    actual_from: "owner@victim.com".into(),
                },
            )
            .unwrap();
        assert_eq!(ok, UploadOutcome::Accepted);
        (w, v)
    }

    #[test]
    fn clean_world_has_empty_census() {
        let (w, _) = lax_world();
        assert!(takeover_census(&w).is_empty());
        assert!(takeover_census_table(&takeover_census(&w)).contains("no takeover activity"));
    }

    #[test]
    fn forged_ds_shows_up_as_capture_and_live_mismatch() {
        let (mut w, v) = lax_world();
        let forged = dsec_wire::DsRdata {
            key_tag: 31337,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0x66; 32],
        };
        let out = w
            .upload_ds(
                &v,
                forged,
                DsSubmission::Email {
                    claimed_from: "owner@victim.com".into(),
                    actual_from: "mallory@attacker.example".into(),
                },
            )
            .unwrap();
        assert_eq!(out, UploadOutcome::Accepted);

        let census = takeover_census(&w);
        let stats = census.get("LaxMail").expect("attributed to the registrar");
        assert_eq!(stats.forged_ds_accepted, 1);
        assert_eq!(stats.ds_dnskey_mismatch, 1, "live DS/DNSKEY mismatch observed");
        assert_eq!(stats.ns_drift, 0);
        assert_eq!(stats.captures(), 1);
        assert_eq!(stats.outstanding(), 1);
        let table = takeover_census_table(&census);
        assert!(table.contains("LaxMail"), "{table}");
    }

    #[test]
    fn forged_ns_shows_up_as_drift() {
        let (mut w, v) = lax_world();
        let evil = Name::parse("ns1.mallory-dns.example").unwrap();
        let out = w
            .submit_ns_change(
                &v,
                std::slice::from_ref(&evil),
                DsSubmission::Email {
                    claimed_from: "owner@victim.com".into(),
                    actual_from: "mallory@attacker.example".into(),
                },
            )
            .unwrap();
        assert_eq!(out, UploadOutcome::Accepted);

        let census = takeover_census(&w);
        let stats = census.get("LaxMail").expect("attributed to the registrar");
        assert_eq!(stats.forged_ns_accepted, 1);
        assert_eq!(stats.ns_drift, 1, "delegation drifted off the hosting plan");
    }
}
