//! One day's scan: for every delegated SLD in every studied TLD, read the
//! NS and DS sets from the TLD zone (as OpenINTEL does from zone files)
//! and fetch the DNSKEY RRset + RRSIGs with a real DO-bit query; classify
//! and aggregate per (operator, TLD).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dsec_dnssec::{classify, DeploymentStatus};
use dsec_ecosystem::{ObservationQuality, SimDate, Tld, World, ALL_TLDS};
use dsec_wire::{FnvHashSet, Name};

use crate::cache::{domain_key, DomainKey, ScanCache, ScanMemo};
use crate::operator_id::operator_of;

/// One delegation to scan: the borrowed name plus the columnar identity
/// the incremental cache keys on — the row-packed [`DomainKey`] and the
/// current change generation, both read in one dense registry sweep
/// ([`dsec_ecosystem::Registry::delegations_columnar`]) instead of a
/// per-domain map probe.
struct ScanItem<'a> {
    name: &'a Name,
    tld: Tld,
    key: DomainKey,
    generation: u64,
}

/// Aggregate DNSSEC state of one (operator, TLD) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Delegated domains.
    pub domains: u64,
    /// Domains publishing at least one DNSKEY.
    pub with_dnskey: u64,
    /// Domains with a DS in the TLD zone.
    pub with_ds: u64,
    /// Fully deployed (complete, validating chain).
    pub fully_deployed: u64,
    /// Partially deployed (DNSKEY+RRSIG, no DS).
    pub partially_deployed: u64,
    /// Records present but the chain fails validation.
    pub misconfigured: u64,
    /// No nameserver answered within the retry budget; the served state
    /// is unknown and the domain is not classified.
    pub unreachable: u64,
    /// Servers answered only with error rcodes (SERVFAIL); the served
    /// state is unknown and the domain is not classified.
    pub indeterminate: u64,
}

impl OperatorStats {
    fn absorb(&mut self, other: &OperatorStats) {
        self.domains += other.domains;
        self.with_dnskey += other.with_dnskey;
        self.with_ds += other.with_ds;
        self.fully_deployed += other.fully_deployed;
        self.partially_deployed += other.partially_deployed;
        self.misconfigured += other.misconfigured;
        self.unreachable += other.unreachable;
        self.indeterminate += other.indeterminate;
    }

    /// Domains whose served state could not be observed this snapshot.
    pub fn unobserved(&self) -> u64 {
        self.unreachable + self.indeterminate
    }
}

/// Knobs for one snapshot scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads (1 = inline).
    pub threads: usize,
    /// NS-rotation rounds used when re-scanning a failed domain. Any
    /// value ≥ 1 re-scans (a single round is a legitimate second
    /// observation); `0` disables the retry pass entirely.
    pub retry_rounds: u32,
    /// Upper bound on how many failed domains are queued for the retry
    /// pass; failures beyond it keep their first-pass outcome.
    pub retry_limit: usize,
    /// Re-scan every domain even when a [`ScanCache`] is supplied; cache
    /// entries are still refreshed. Lets callers verify the cached path
    /// against a ground-truth full scan.
    pub force_full: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            threads: 1,
            retry_rounds: 3,
            retry_limit: 4096,
            force_full: false,
        }
    }
}

/// One day's aggregated scan.
///
/// (Kept as plain data; the longitudinal store serializes to CSV, which is
/// what the paper's plotting pipeline consumed.)
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Scan date.
    pub date: SimDate,
    /// Per (operator key, TLD) aggregates. The operator key is the
    /// canonical SLD of the NS records (String form for serialization).
    pub cells: BTreeMap<(String, Tld), OperatorStats>,
}

impl Snapshot {
    /// Scans every delegation in every studied TLD.
    pub fn take(world: &World) -> Snapshot {
        Self::take_filtered(world, &ALL_TLDS)
    }

    /// Scans only the given TLDs (per-figure focused worlds).
    pub fn take_filtered(world: &World, tlds: &[Tld]) -> Snapshot {
        Self::take_with_threads(world, tlds, 1)
    }

    /// Parallel scan: the per-TLD delegation lists are partitioned across
    /// `threads` workers (OpenINTEL's scanner is similarly fanned out).
    /// Every worker issues real queries against the shared authorities;
    /// results are merged into one snapshot. `threads == 1` scans inline.
    pub fn take_with_threads(world: &World, tlds: &[Tld], threads: usize) -> Snapshot {
        Self::take_with_options(
            world,
            tlds,
            &ScanOptions {
                threads,
                ..ScanOptions::default()
            },
        )
    }

    /// Degradation-aware scan. Domains whose first pass ends unreachable
    /// or indeterminate are queued (bounded by
    /// [`ScanOptions::retry_limit`]) and re-scanned once with
    /// [`ScanOptions::retry_rounds`] NS rotations before their outcome is
    /// recorded — mirroring how OpenINTEL re-tries failed scans before
    /// writing a day's data. With the fault plane disabled no first-pass
    /// failure can occur and the result is identical to the fault-
    /// oblivious scan.
    pub fn take_with_options(world: &World, tlds: &[Tld], options: &ScanOptions) -> Snapshot {
        Self::scan(world, tlds, options, None)
    }

    /// Incremental scan: like [`Snapshot::take_with_options`], but domains
    /// whose change generation matches their entry in `cache` are answered
    /// from the cache without issuing any queries. Aggregation is
    /// commutative (per-cell addition), so the cached path produces cells
    /// identical to a full scan whenever cached entries match what a fresh
    /// scan would observe — which holds by construction with the fault
    /// plane off, and is protected under faults by never caching
    /// unreachable or indeterminate outcomes. After the scan the cache is
    /// pruned to the currently delegated population.
    pub fn take_cached(
        world: &World,
        tlds: &[Tld],
        options: &ScanOptions,
        cache: &mut ScanCache,
    ) -> Snapshot {
        Self::scan(world, tlds, options, Some(cache))
    }

    fn scan(
        world: &World,
        tlds: &[Tld],
        options: &ScanOptions,
        mut cache: Option<&mut ScanCache>,
    ) -> Snapshot {
        let now = world.today.epoch_seconds();
        // Enumerate the population by *borrowing* each registry's
        // columnar delegation table — names stay where they are, and the
        // change generation rides along from the same dense sweep, so
        // the cache pass never hashes a name or probes a map for it.
        let pairs: Vec<ScanItem<'_>> = tlds
            .iter()
            .flat_map(|&tld| {
                world
                    .registry(tld)
                    .delegations_columnar()
                    .map(move |(row, name, generation)| ScanItem {
                        name,
                        tld,
                        key: domain_key(tld, row),
                        generation,
                    })
            })
            .collect();

        // Aggregation happens under shared `Arc<str>` operator keys (a
        // warm hit costs a refcount bump, not a String); the map is
        // converted to the `String`-keyed public cells at the end, one
        // allocation per distinct cell.
        let mut agg: HashMap<(Arc<str>, Tld), OperatorStats> = HashMap::new();

        // Fused cache pass: generation read + cache peek + partial
        // aggregation in one parallel sweep over contiguous chunks. On a
        // warm cache the generation reads are the scan's dominant cost,
        // and the old design serialized the lookups behind them; here
        // each worker peeks through a shared `&ScanCache` (hit tallies
        // stay worker-private) and only the small merge step touches the
        // cache mutably. Chunks re-join in spawn order, so `to_scan`
        // comes out in ascending pair order — identical to a sequential
        // sweep.
        // The world-lifetime L2 memo under the per-campaign cache: a
        // fresh cache over an already-scanned world (a new campaign, a
        // bench's deliberate cold start) hits the memo parked in the
        // world's annex instead of issuing real queries. Off under
        // faults (failure draws must not replay from a cache) and under
        // `force_full` (ground truth reads no cache); the
        // generation-match rule is identical to the cache's, so a hit
        // is exactly what a fresh scan would have produced.
        let memo = match &cache {
            Some(_) if !options.force_full && !world.network.faults().is_enabled() => {
                Some(world.annex().get_or_init(ScanMemo::default))
            }
            _ => None,
        };

        let mut to_scan: Vec<usize> = Vec::with_capacity(pairs.len());
        if let Some(cache) = cache.as_deref_mut() {
            let partials = run_cache_pass(
                &pairs,
                cache,
                memo.as_deref(),
                options.force_full,
                options.threads,
            );
            let (mut hits, mut misses) = (0u64, 0u64);
            for part in partials {
                for (key, stats) in part.agg {
                    agg.entry(key).or_default().absorb(&stats);
                }
                to_scan.extend(part.to_scan);
                hits += part.hits;
                misses += part.misses;
            }
            cache.note_lookups(hits, misses);
        } else {
            to_scan.extend(0..pairs.len());
        }

        // Operator identification (NS lookup + SLD extraction), only for
        // the domains that will actually be scanned: a cache hit reuses
        // the operator stored with the entry (every NS edit bumps the
        // generation, so a generation match implies the operator too).
        let mut operator_at: Vec<Option<Arc<str>>> = vec![None; pairs.len()];
        for (&i, operator) in to_scan
            .iter()
            .zip(run_operators(world, &pairs, &to_scan, options.threads))
        {
            operator_at[i] = Some(operator);
        }

        // First pass over the (possibly cache-reduced) scan list.
        let first_pass = run_pass(world, &pairs, &to_scan, now, 1, options.threads);

        // Partition into settled outcomes and the bounded retry queue, in
        // work-list order so the bound is deterministic.
        let mut settled: Vec<(usize, OperatorStats, bool)> =
            Vec::with_capacity(first_pass.len());
        let mut retry: Vec<usize> = Vec::new();
        for (i, stats, failed) in first_pass {
            if failed && options.retry_rounds >= 1 && retry.len() < options.retry_limit {
                retry.push(i);
            } else {
                settled.push((i, stats, failed));
            }
        }

        // Retry pass: fanned out over the same worker pool as the first
        // pass. It runs strictly after the first pass, and per-domain
        // fault draws are keyed by (server, query, attempt) rather than by
        // thread, so the outcome is independent of worker interleaving.
        settled.extend(run_pass(
            world,
            &pairs,
            &retry,
            now,
            options.retry_rounds.max(1),
            options.threads,
        ));

        let mut memo_new: Vec<(DomainKey, u64, Arc<str>, OperatorStats)> = Vec::new();
        for (i, stats, failed) in settled {
            let item = &pairs[i];
            let operator = operator_at[i]
                .clone()
                .expect("scanned domains have a prepared operator key");
            // Unreachable/indeterminate outcomes are never cached.
            if !failed {
                if let Some(cache) = cache.as_deref_mut() {
                    cache.insert(item.key, item.generation, operator.clone(), stats);
                }
                if memo.is_some() {
                    memo_new.push((item.key, item.generation, operator.clone(), stats));
                }
            }
            agg.entry((operator, item.tld)).or_default().absorb(&stats);
        }
        if let Some(memo) = &memo {
            memo.store(memo_new);
        }

        if let Some(cache) = cache {
            // Prune departed domains — but only when some delegation was
            // actually added or removed since the last prune of this
            // scope. The prune rehashes the entire population, which on
            // an unchanged day costs about as much as the cache pass
            // itself; the registries' population epochs move exactly when
            // the delegation set does, so skipping is exact, not a
            // heuristic. (Stale entries can never be *served* regardless:
            // a re-registered name resumes at a strictly larger
            // generation.)
            let fingerprint = tlds
                .iter()
                .fold(0u64, |acc, &tld| {
                    acc.wrapping_mul(31).wrapping_add(tld as u64 + 1)
                });
            let epoch = tlds
                .iter()
                .map(|&tld| world.registry(tld).population_epoch())
                .fold(0u64, u64::wrapping_add);
            if cache.needs_prune(fingerprint, epoch) {
                let live: FnvHashSet<DomainKey> = pairs.iter().map(|item| item.key).collect();
                cache.retain_live(&live);
                cache.note_pruned(fingerprint, epoch);
            }
        }

        let cells: BTreeMap<(String, Tld), OperatorStats> = agg
            .into_iter()
            .map(|((operator, tld), stats)| ((operator.to_string(), tld), stats))
            .collect();
        Snapshot {
            date: world.today,
            cells,
        }
    }

    /// Aggregates over all operators for one TLD.
    pub fn tld_totals(&self, tld: Tld) -> OperatorStats {
        let mut total = OperatorStats::default();
        for ((_, t), stats) in &self.cells {
            if *t == tld {
                total.absorb(stats);
            }
        }
        total
    }

    /// Aggregates one operator across the given TLDs.
    pub fn operator_totals(&self, operator: &str, tlds: &[Tld]) -> OperatorStats {
        let mut total = OperatorStats::default();
        for ((op, t), stats) in &self.cells {
            if op == operator && tlds.contains(t) {
                total.absorb(stats);
            }
        }
        total
    }

    /// Per-operator totals across the given TLDs, descending by `metric`.
    pub fn operators_ranked(
        &self,
        tlds: &[Tld],
        metric: Metric,
    ) -> Vec<(String, OperatorStats)> {
        let mut agg: BTreeMap<&str, OperatorStats> = BTreeMap::new();
        for ((op, t), stats) in &self.cells {
            if tlds.contains(t) {
                agg.entry(op.as_str()).or_default().absorb(stats);
            }
        }
        let mut out: Vec<(String, OperatorStats)> = agg
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| metric.of(&b.1).cmp(&metric.of(&a.1)).then(a.0.cmp(&b.0)));
        out
    }
}

/// Which population a CDF/ranking counts (Figure 3's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// All registered domains.
    All,
    /// Partially deployed domains.
    Partial,
    /// Fully deployed domains.
    Full,
    /// Domains with a DNSKEY (Table 3's ordering).
    WithDnskey,
}

impl Metric {
    /// Extracts the counted quantity.
    pub fn of(self, stats: &OperatorStats) -> u64 {
        match self {
            Metric::All => stats.domains,
            Metric::Partial => stats.partially_deployed,
            Metric::Full => stats.fully_deployed,
            Metric::WithDnskey => stats.with_dnskey,
        }
    }
}

/// One worker's share of the fused cache pass: partially aggregated warm
/// hits, the chunk's cold work-list with the generations already read,
/// and private lookup tallies.
struct CachePassPart {
    agg: HashMap<(Arc<str>, Tld), OperatorStats>,
    /// Pair indices of domains that must be scanned.
    to_scan: Vec<usize>,
    hits: u64,
    misses: u64,
}

/// The fused threaded cache pass: cache peek, memo probe, and warm-hit
/// aggregation in one sweep. The change generation was already read by
/// the columnar enumeration and rides on each [`ScanItem`], so workers
/// hash one packed integer per domain and never touch name bytes.
/// Workers share the cache immutably ([`ScanCache::peek`] never counts)
/// and take one memo read view per chunk; everything mutable is
/// chunk-private; chunks are contiguous and re-joined in spawn order, so
/// the concatenated work-lists are in ascending pair order. Pure reads
/// of cache and memo state — threading cannot change the result. A memo
/// hit counts as a cache hit (the two levels are one logical cache) and
/// is **not** written back into the [`ScanCache`]: later sweeps probe
/// both levels anyway, so a write-back would only add an insert per
/// domain to the cold path.
fn run_cache_pass(
    pairs: &[ScanItem<'_>],
    cache: &ScanCache,
    memo: Option<&ScanMemo>,
    force_full: bool,
    threads: usize,
) -> Vec<CachePassPart> {
    let sweep = |base: usize, part: &[ScanItem<'_>]| -> CachePassPart {
        let mut out = CachePassPart {
            agg: HashMap::new(),
            to_scan: Vec::with_capacity(part.len()),
            hits: 0,
            misses: 0,
        };
        let memo_view = memo.map(ScanMemo::view);
        for (offset, item) in part.iter().enumerate() {
            if !force_full {
                if let Some((operator, stats)) =
                    cache.peek(item.key, item.generation).or_else(|| {
                        memo_view
                            .as_ref()
                            .and_then(|view| view.get(item.key, item.generation))
                    })
                {
                    out.hits += 1;
                    out.agg
                        .entry((operator, item.tld))
                        .or_default()
                        .absorb(&stats);
                    continue;
                }
            }
            out.misses += 1;
            out.to_scan.push(base + offset);
        }
        out
    };
    let threads = threads.max(1).min(pairs.len().max(1));
    if threads == 1 {
        return vec![sweep(0, pairs)];
    }
    let chunk = pairs.len().div_ceil(threads);
    let sweep = &sweep;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .enumerate()
            .map(|(n, part)| scope.spawn(move |_| sweep(n * chunk, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cache-pass worker does not panic"))
            .collect::<Vec<_>>()
    })
    .expect("cache-pass scope completes")
}

/// The threaded operator pass: NS lookup + operator identification for
/// the pairs selected by `indices`, returned in `indices` order. Pure
/// reads of the zone state, re-joined in spawn order like the other
/// passes.
fn run_operators(
    world: &World,
    pairs: &[ScanItem<'_>],
    indices: &[usize],
    threads: usize,
) -> Vec<Arc<str>> {
    let operator_for = |&i: &usize| -> Arc<str> {
        let ScanItem { name: domain, tld, .. } = &pairs[i];
        let ns = world.registry(*tld).ns_of(domain);
        operator_of(&ns)
            .map(|n| Arc::from(n.to_string()))
            .unwrap_or_else(|| Arc::from("(no-ns)"))
    };
    let threads = threads.max(1).min(indices.len().max(1));
    if threads == 1 {
        return indices.iter().map(operator_for).collect();
    }
    let chunk = indices.len().div_ceil(threads);
    let partials = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = indices
            .chunks(chunk)
            .map(|part| scope.spawn(move |_| part.iter().map(operator_for).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("operator worker does not panic"))
            .collect::<Vec<_>>()
    })
    .expect("operator scope completes");
    partials.into_iter().flatten().collect()
}

/// One threaded pass over `indices` (positions in `pairs`), scanning each
/// domain with `rounds` NS rotations. Results come back as (work index,
/// stats, failed) in `indices` order: chunks are contiguous slices of the
/// already-sorted index list and are re-joined in spawn order, so worker
/// scheduling cannot reorder them.
fn run_pass(
    world: &World,
    pairs: &[ScanItem<'_>],
    indices: &[usize],
    now: u32,
    rounds: u32,
    threads: usize,
) -> Vec<(usize, OperatorStats, bool)> {
    let threads = threads.max(1).min(indices.len().max(1));
    if threads == 1 {
        return indices
            .iter()
            .map(|&i| {
                let (stats, failed) = scan_domain(world, pairs[i].name, now, rounds);
                (i, stats, failed)
            })
            .collect();
    }
    let chunk = indices.len().div_ceil(threads);
    let partials = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = indices
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    part.iter()
                        .map(|&i| {
                            let (stats, failed) = scan_domain(world, pairs[i].name, now, rounds);
                            (i, stats, failed)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker does not panic"))
            .collect::<Vec<_>>()
    })
    .expect("scan scope completes");
    partials.into_iter().flatten().collect()
}

/// Scans one domain into a single-domain stats cell. The bool reports
/// whether the observation failed (unreachable/indeterminate) and the
/// domain is a candidate for the retry pass.
fn scan_domain(world: &World, domain: &Name, now: u32, rounds: u32) -> (OperatorStats, bool) {
    let (obs, quality) = world.observe_domain(domain, rounds);
    let mut stats = OperatorStats {
        domains: 1,
        ..Default::default()
    };
    match quality {
        ObservationQuality::Unreachable => {
            stats.unreachable = 1;
            return (stats, true);
        }
        ObservationQuality::Indeterminate => {
            stats.indeterminate = 1;
            return (stats, true);
        }
        ObservationQuality::Clean | ObservationQuality::Degraded => {}
    }
    if obs.has_dnskey() {
        stats.with_dnskey = 1;
    }
    if obs.has_ds() {
        stats.with_ds = 1;
    }
    match classify(domain, &obs, now) {
        DeploymentStatus::FullyDeployed => stats.fully_deployed = 1,
        DeploymentStatus::PartiallyDeployed => stats.partially_deployed = 1,
        DeploymentStatus::Misconfigured(_) => stats.misconfigured = 1,
        DeploymentStatus::NotDeployed | DeploymentStatus::InsecureUnsupported => {}
    }
    (stats, false)
}

/// The cumulative-coverage curve of Figure 3: for each operator rank k
/// (descending size), the fraction of the metric covered by the top k.
pub fn coverage_curve(snapshot: &Snapshot, tlds: &[Tld], metric: Metric) -> Vec<f64> {
    let ranked = snapshot.operators_ranked(tlds, metric);
    let total: u64 = ranked.iter().map(|(_, s)| metric.of(s)).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    ranked
        .iter()
        .map(|(_, s)| {
            acc += metric.of(s);
            acc as f64 / total as f64
        })
        .collect()
}

/// How many operators (by rank) are needed to cover `fraction` of the
/// metric — the paper's "26 operators for 50% of all domains, 2 for 54%
/// of fully deployed" statistic.
pub fn operators_to_cover(snapshot: &Snapshot, tlds: &[Tld], metric: Metric, fraction: f64) -> usize {
    coverage_curve(snapshot, tlds, metric)
        .iter()
        .position(|&c| c >= fraction)
        .map(|p| p + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(domains: u64, dnskey: u64, ds: u64, full: u64, partial: u64) -> OperatorStats {
        OperatorStats {
            domains,
            with_dnskey: dnskey,
            with_ds: ds,
            fully_deployed: full,
            partially_deployed: partial,
            ..OperatorStats::default()
        }
    }

    fn synthetic_snapshot() -> Snapshot {
        let mut cells = BTreeMap::new();
        cells.insert(("big.net".into(), Tld::Com), cell(100, 2, 2, 2, 0));
        cells.insert(("big.net".into(), Tld::Net), cell(50, 1, 1, 1, 0));
        cells.insert(("mid.net".into(), Tld::Com), cell(40, 30, 0, 0, 30));
        cells.insert(("small.net".into(), Tld::Com), cell(10, 10, 10, 10, 0));
        Snapshot {
            date: SimDate(0),
            cells,
        }
    }

    #[test]
    fn tld_totals_aggregate() {
        let s = synthetic_snapshot();
        let com = s.tld_totals(Tld::Com);
        assert_eq!(com.domains, 150);
        assert_eq!(com.with_dnskey, 42);
        let net = s.tld_totals(Tld::Net);
        assert_eq!(net.domains, 50);
        assert_eq!(s.tld_totals(Tld::Se).domains, 0);
    }

    #[test]
    fn operator_totals_span_tlds() {
        let s = synthetic_snapshot();
        let big = s.operator_totals("big.net", &[Tld::Com, Tld::Net]);
        assert_eq!(big.domains, 150);
        let com_only = s.operator_totals("big.net", &[Tld::Com]);
        assert_eq!(com_only.domains, 100);
    }

    #[test]
    fn ranking_orders_by_metric() {
        let s = synthetic_snapshot();
        let by_all = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::All);
        assert_eq!(by_all[0].0, "big.net");
        let by_partial = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::Partial);
        assert_eq!(by_partial[0].0, "mid.net");
        let by_full = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::Full);
        assert_eq!(by_full[0].0, "small.net");
    }

    #[test]
    fn coverage_curve_is_monotone_to_one() {
        let s = synthetic_snapshot();
        let curve = coverage_curve(&s, &[Tld::Com, Tld::Net], Metric::All);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operators_to_cover_finds_rank() {
        let s = synthetic_snapshot();
        // All: 150/40/10 → top1 = 75%, so covering 50% needs 1 operator.
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::All, 0.5),
            1
        );
        // Full: 10 (small) + 3 (big) → small covers 10/13 = 77%.
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::Full, 0.5),
            1
        );
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::Full, 0.9),
            2
        );
        // Empty metric yields rank 0.
        assert_eq!(operators_to_cover(&s, &[Tld::Se], Metric::All, 0.5), 0);
    }

    #[test]
    fn metric_extraction() {
        let c = cell(10, 5, 4, 3, 2);
        assert_eq!(Metric::All.of(&c), 10);
        assert_eq!(Metric::WithDnskey.of(&c), 5);
        assert_eq!(Metric::Full.of(&c), 3);
        assert_eq!(Metric::Partial.of(&c), 2);
    }
}
