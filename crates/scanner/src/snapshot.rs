//! One day's scan: for every delegated SLD in every studied TLD, read the
//! NS and DS sets from the TLD zone (as OpenINTEL does from zone files)
//! and fetch the DNSKEY RRset + RRSIGs with a real DO-bit query; classify
//! and aggregate per (operator, TLD).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dsec_dnssec::{classify, DeploymentStatus};
use dsec_ecosystem::{ObservationQuality, SimDate, Tld, World, ALL_TLDS};
use dsec_wire::Name;

use crate::operator_id::operator_of;

/// Aggregate DNSSEC state of one (operator, TLD) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Delegated domains.
    pub domains: u64,
    /// Domains publishing at least one DNSKEY.
    pub with_dnskey: u64,
    /// Domains with a DS in the TLD zone.
    pub with_ds: u64,
    /// Fully deployed (complete, validating chain).
    pub fully_deployed: u64,
    /// Partially deployed (DNSKEY+RRSIG, no DS).
    pub partially_deployed: u64,
    /// Records present but the chain fails validation.
    pub misconfigured: u64,
    /// No nameserver answered within the retry budget; the served state
    /// is unknown and the domain is not classified.
    pub unreachable: u64,
    /// Servers answered only with error rcodes (SERVFAIL); the served
    /// state is unknown and the domain is not classified.
    pub indeterminate: u64,
}

impl OperatorStats {
    fn absorb(&mut self, other: &OperatorStats) {
        self.domains += other.domains;
        self.with_dnskey += other.with_dnskey;
        self.with_ds += other.with_ds;
        self.fully_deployed += other.fully_deployed;
        self.partially_deployed += other.partially_deployed;
        self.misconfigured += other.misconfigured;
        self.unreachable += other.unreachable;
        self.indeterminate += other.indeterminate;
    }

    /// Domains whose served state could not be observed this snapshot.
    pub fn unobserved(&self) -> u64 {
        self.unreachable + self.indeterminate
    }
}

/// Knobs for one snapshot scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads (1 = inline).
    pub threads: usize,
    /// NS-rotation rounds used when re-scanning a failed domain. Values
    /// ≤ 1 disable the retry pass entirely.
    pub retry_rounds: u32,
    /// Upper bound on how many failed domains are queued for the retry
    /// pass; failures beyond it keep their first-pass outcome.
    pub retry_limit: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            threads: 1,
            retry_rounds: 3,
            retry_limit: 4096,
        }
    }
}

/// One day's aggregated scan.
///
/// (Kept as plain data; the longitudinal store serializes to CSV, which is
/// what the paper's plotting pipeline consumed.)
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Scan date.
    pub date: SimDate,
    /// Per (operator key, TLD) aggregates. The operator key is the
    /// canonical SLD of the NS records (String form for serialization).
    pub cells: BTreeMap<(String, Tld), OperatorStats>,
}

impl Snapshot {
    /// Scans every delegation in every studied TLD.
    pub fn take(world: &World) -> Snapshot {
        Self::take_filtered(world, &ALL_TLDS)
    }

    /// Scans only the given TLDs (per-figure focused worlds).
    pub fn take_filtered(world: &World, tlds: &[Tld]) -> Snapshot {
        Self::take_with_threads(world, tlds, 1)
    }

    /// Parallel scan: the per-TLD delegation lists are partitioned across
    /// `threads` workers (OpenINTEL's scanner is similarly fanned out).
    /// Every worker issues real queries against the shared authorities;
    /// results are merged into one snapshot. `threads == 1` scans inline.
    pub fn take_with_threads(world: &World, tlds: &[Tld], threads: usize) -> Snapshot {
        Self::take_with_options(
            world,
            tlds,
            &ScanOptions {
                threads,
                ..ScanOptions::default()
            },
        )
    }

    /// Degradation-aware scan. Domains whose first pass ends unreachable
    /// or indeterminate are queued (bounded by
    /// [`ScanOptions::retry_limit`]) and re-scanned once with
    /// [`ScanOptions::retry_rounds`] NS rotations before their outcome is
    /// recorded — mirroring how OpenINTEL re-tries failed scans before
    /// writing a day's data. With the fault plane disabled no first-pass
    /// failure can occur and the result is identical to the fault-
    /// oblivious scan.
    pub fn take_with_options(world: &World, tlds: &[Tld], options: &ScanOptions) -> Snapshot {
        let now = world.today.epoch_seconds();
        // Work list: (domain, operator key, tld).
        let work: Vec<(Name, String, Tld)> = tlds
            .iter()
            .flat_map(|&tld| {
                let registry = world.registry(tld);
                registry
                    .delegations()
                    .into_iter()
                    .map(move |domain| {
                        let ns = registry.ns_of(&domain);
                        let operator = operator_of(&ns)
                            .map(|n| n.to_string())
                            .unwrap_or_else(|| "(no-ns)".into());
                        (domain, operator, tld)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        let threads = options.threads.max(1).min(work.len().max(1));
        let mut cells: BTreeMap<(String, Tld), OperatorStats> = BTreeMap::new();
        // Failed scans awaiting the retry pass: (index into `work`, stats).
        let mut failures: Vec<(usize, OperatorStats)> = Vec::new();
        if threads == 1 {
            for (i, (domain, operator, tld)) in work.iter().enumerate() {
                let (stats, failed) = scan_domain(world, domain, now, 1);
                if failed {
                    failures.push((i, stats));
                } else {
                    cells
                        .entry((operator.clone(), *tld))
                        .or_default()
                        .absorb(&stats);
                }
            }
        } else {
            let chunk = work.len().div_ceil(threads);
            let partials = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .chunks(chunk)
                    .enumerate()
                    .map(|(chunk_no, part)| {
                        scope.spawn(move |_| {
                            let mut local: BTreeMap<(String, Tld), OperatorStats> =
                                BTreeMap::new();
                            let mut local_failures: Vec<(usize, OperatorStats)> = Vec::new();
                            for (j, (domain, operator, tld)) in part.iter().enumerate() {
                                let (stats, failed) = scan_domain(world, domain, now, 1);
                                if failed {
                                    local_failures.push((chunk_no * chunk + j, stats));
                                } else {
                                    local
                                        .entry((operator.clone(), *tld))
                                        .or_default()
                                        .absorb(&stats);
                                }
                            }
                            (local, local_failures)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scan worker does not panic"))
                    .collect::<Vec<_>>()
            })
            .expect("scan scope completes");
            for (partial, partial_failures) in partials {
                for (key, stats) in partial {
                    cells.entry(key).or_default().absorb(&stats);
                }
                failures.extend(partial_failures);
            }
            // Merge order of worker results must not leak into the retry
            // ordering.
            failures.sort_by_key(|(i, _)| *i);
        }

        // Retry pass: bounded, inline, in work-list order.
        for (n, (i, first_pass)) in failures.into_iter().enumerate() {
            let (domain, operator, tld) = &work[i];
            let final_stats = if options.retry_rounds > 1 && n < options.retry_limit {
                scan_domain(world, domain, now, options.retry_rounds).0
            } else {
                first_pass
            };
            cells
                .entry((operator.clone(), *tld))
                .or_default()
                .absorb(&final_stats);
        }

        Snapshot {
            date: world.today,
            cells,
        }
    }

    /// Aggregates over all operators for one TLD.
    pub fn tld_totals(&self, tld: Tld) -> OperatorStats {
        let mut total = OperatorStats::default();
        for ((_, t), stats) in &self.cells {
            if *t == tld {
                total.absorb(stats);
            }
        }
        total
    }

    /// Aggregates one operator across the given TLDs.
    pub fn operator_totals(&self, operator: &str, tlds: &[Tld]) -> OperatorStats {
        let mut total = OperatorStats::default();
        for ((op, t), stats) in &self.cells {
            if op == operator && tlds.contains(t) {
                total.absorb(stats);
            }
        }
        total
    }

    /// Per-operator totals across the given TLDs, descending by `metric`.
    pub fn operators_ranked(
        &self,
        tlds: &[Tld],
        metric: Metric,
    ) -> Vec<(String, OperatorStats)> {
        let mut agg: BTreeMap<&str, OperatorStats> = BTreeMap::new();
        for ((op, t), stats) in &self.cells {
            if tlds.contains(t) {
                agg.entry(op.as_str()).or_default().absorb(stats);
            }
        }
        let mut out: Vec<(String, OperatorStats)> = agg
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| metric.of(&b.1).cmp(&metric.of(&a.1)).then(a.0.cmp(&b.0)));
        out
    }
}

/// Which population a CDF/ranking counts (Figure 3's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// All registered domains.
    All,
    /// Partially deployed domains.
    Partial,
    /// Fully deployed domains.
    Full,
    /// Domains with a DNSKEY (Table 3's ordering).
    WithDnskey,
}

impl Metric {
    /// Extracts the counted quantity.
    pub fn of(self, stats: &OperatorStats) -> u64 {
        match self {
            Metric::All => stats.domains,
            Metric::Partial => stats.partially_deployed,
            Metric::Full => stats.fully_deployed,
            Metric::WithDnskey => stats.with_dnskey,
        }
    }
}

/// Scans one domain into a single-domain stats cell. The bool reports
/// whether the observation failed (unreachable/indeterminate) and the
/// domain is a candidate for the retry pass.
fn scan_domain(world: &World, domain: &Name, now: u32, rounds: u32) -> (OperatorStats, bool) {
    let (obs, quality) = world.observe_domain(domain, rounds);
    let mut stats = OperatorStats {
        domains: 1,
        ..Default::default()
    };
    match quality {
        ObservationQuality::Unreachable => {
            stats.unreachable = 1;
            return (stats, true);
        }
        ObservationQuality::Indeterminate => {
            stats.indeterminate = 1;
            return (stats, true);
        }
        ObservationQuality::Clean | ObservationQuality::Degraded => {}
    }
    if obs.has_dnskey() {
        stats.with_dnskey = 1;
    }
    if obs.has_ds() {
        stats.with_ds = 1;
    }
    match classify(domain, &obs, now) {
        DeploymentStatus::FullyDeployed => stats.fully_deployed = 1,
        DeploymentStatus::PartiallyDeployed => stats.partially_deployed = 1,
        DeploymentStatus::Misconfigured(_) => stats.misconfigured = 1,
        DeploymentStatus::NotDeployed | DeploymentStatus::InsecureUnsupported => {}
    }
    (stats, false)
}

/// The cumulative-coverage curve of Figure 3: for each operator rank k
/// (descending size), the fraction of the metric covered by the top k.
pub fn coverage_curve(snapshot: &Snapshot, tlds: &[Tld], metric: Metric) -> Vec<f64> {
    let ranked = snapshot.operators_ranked(tlds, metric);
    let total: u64 = ranked.iter().map(|(_, s)| metric.of(s)).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    ranked
        .iter()
        .map(|(_, s)| {
            acc += metric.of(s);
            acc as f64 / total as f64
        })
        .collect()
}

/// How many operators (by rank) are needed to cover `fraction` of the
/// metric — the paper's "26 operators for 50% of all domains, 2 for 54%
/// of fully deployed" statistic.
pub fn operators_to_cover(snapshot: &Snapshot, tlds: &[Tld], metric: Metric, fraction: f64) -> usize {
    coverage_curve(snapshot, tlds, metric)
        .iter()
        .position(|&c| c >= fraction)
        .map(|p| p + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(domains: u64, dnskey: u64, ds: u64, full: u64, partial: u64) -> OperatorStats {
        OperatorStats {
            domains,
            with_dnskey: dnskey,
            with_ds: ds,
            fully_deployed: full,
            partially_deployed: partial,
            ..OperatorStats::default()
        }
    }

    fn synthetic_snapshot() -> Snapshot {
        let mut cells = BTreeMap::new();
        cells.insert(("big.net".into(), Tld::Com), cell(100, 2, 2, 2, 0));
        cells.insert(("big.net".into(), Tld::Net), cell(50, 1, 1, 1, 0));
        cells.insert(("mid.net".into(), Tld::Com), cell(40, 30, 0, 0, 30));
        cells.insert(("small.net".into(), Tld::Com), cell(10, 10, 10, 10, 0));
        Snapshot {
            date: SimDate(0),
            cells,
        }
    }

    #[test]
    fn tld_totals_aggregate() {
        let s = synthetic_snapshot();
        let com = s.tld_totals(Tld::Com);
        assert_eq!(com.domains, 150);
        assert_eq!(com.with_dnskey, 42);
        let net = s.tld_totals(Tld::Net);
        assert_eq!(net.domains, 50);
        assert_eq!(s.tld_totals(Tld::Se).domains, 0);
    }

    #[test]
    fn operator_totals_span_tlds() {
        let s = synthetic_snapshot();
        let big = s.operator_totals("big.net", &[Tld::Com, Tld::Net]);
        assert_eq!(big.domains, 150);
        let com_only = s.operator_totals("big.net", &[Tld::Com]);
        assert_eq!(com_only.domains, 100);
    }

    #[test]
    fn ranking_orders_by_metric() {
        let s = synthetic_snapshot();
        let by_all = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::All);
        assert_eq!(by_all[0].0, "big.net");
        let by_partial = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::Partial);
        assert_eq!(by_partial[0].0, "mid.net");
        let by_full = s.operators_ranked(&[Tld::Com, Tld::Net], Metric::Full);
        assert_eq!(by_full[0].0, "small.net");
    }

    #[test]
    fn coverage_curve_is_monotone_to_one() {
        let s = synthetic_snapshot();
        let curve = coverage_curve(&s, &[Tld::Com, Tld::Net], Metric::All);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operators_to_cover_finds_rank() {
        let s = synthetic_snapshot();
        // All: 150/40/10 → top1 = 75%, so covering 50% needs 1 operator.
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::All, 0.5),
            1
        );
        // Full: 10 (small) + 3 (big) → small covers 10/13 = 77%.
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::Full, 0.5),
            1
        );
        assert_eq!(
            operators_to_cover(&s, &[Tld::Com, Tld::Net], Metric::Full, 0.9),
            2
        );
        // Empty metric yields rank 0.
        assert_eq!(operators_to_cover(&s, &[Tld::Se], Metric::All, 0.5), 0);
    }

    #[test]
    fn metric_extraction() {
        let c = cell(10, 5, 4, 3, 2);
        assert_eq!(Metric::All.of(&c), 10);
        assert_eq!(Metric::WithDnskey.of(&c), 5);
        assert_eq!(Metric::Full.of(&c), 3);
        assert_eq!(Metric::Partial.of(&c), 2);
    }
}
