//! Per-operator key-rollover style census.
//!
//! The ecosystem logs every key-lifecycle transition unconditionally
//! (see `dsec_ecosystem::events`): rollover phases, abrupt key
//! replacements, off-schedule DS swaps, lapsed signatures. This module
//! joins that log with the scanner's DNS-operator grouping — the same
//! NS-derived [`operator_of`] key every snapshot cell uses — so a
//! campaign can answer the paper-style question "*which operators* run
//! which rollover choreography, and which ones break chains doing it?".

use std::collections::BTreeMap;

use dsec_ecosystem::{Event, RolloverStyle, World};
use dsec_wire::Name;

use crate::operator_id::operator_of;

/// Rollover behaviour tallies for one DNS operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorRolloverStats {
    /// Completed pre-publish ZSK rollovers (no DS leg).
    pub prepublish_zsk: u64,
    /// Completed double-signature KSK rollovers.
    pub double_signature_ksk: u64,
    /// Completed algorithm rollovers.
    pub algorithm: u64,
    /// Abrupt key replacements (no rollover choreography at all).
    pub abrupt: u64,
    /// DS swaps that landed off the planned day (a mistimed registrar
    /// leg — each one risks, and past the double-signature window
    /// guarantees, a bogus window).
    pub off_schedule_ds: u64,
    /// RRSIG validity lapses observed mid-rollover (stalled operator).
    pub expired_signatures: u64,
}

impl OperatorRolloverStats {
    /// Completed choreographed rollovers of any style.
    pub fn completed(&self) -> u64 {
        self.prepublish_zsk + self.double_signature_ksk + self.algorithm
    }

    /// Lifecycle incidents that open (or threaten) bogus windows.
    pub fn incidents(&self) -> u64 {
        self.abrupt + self.off_schedule_ds + self.expired_signatures
    }

    fn count_completed(&mut self, style: RolloverStyle) {
        match style {
            RolloverStyle::PrePublishZsk => self.prepublish_zsk += 1,
            RolloverStyle::DoubleSignatureKsk => self.double_signature_ksk += 1,
            RolloverStyle::Algorithm => self.algorithm += 1,
        }
    }
}

/// The operator key a lifecycle event attributes to: the scanner's
/// NS-derived grouping of the domain's current delegation, or
/// `"(unknown)"` when the domain has left the registry.
fn operator_key_of(world: &World, domain: &Name) -> String {
    world
        .domain(domain)
        .map(|d| world.registry(d.tld).ns_of(domain))
        .filter(|ns| !ns.is_empty())
        .and_then(|ns| operator_of(&ns))
        .map(|op| op.to_string())
        .unwrap_or_else(|| "(unknown)".into())
}

/// Builds the census: walks the world's always-logged key-lifecycle
/// entries and tallies them under the owning operator's key. Counts are
/// cumulative over the world's whole history, deterministic, and
/// independent of scan threading (the log is single-writer).
pub fn rollover_census(world: &World) -> BTreeMap<String, OperatorRolloverStats> {
    let mut census: BTreeMap<String, OperatorRolloverStats> = BTreeMap::new();
    for (_, event) in world.events.entries() {
        let (domain, apply): (&Name, fn(&mut OperatorRolloverStats, &Event)) = match event {
            Event::RolloverCompleted { domain, .. } => (domain, |s, e| {
                if let Event::RolloverCompleted { style, .. } = e {
                    s.count_completed(*style);
                }
            }),
            Event::RolloverAbrupt { domain } => (domain, |s, _| s.abrupt += 1),
            Event::RolloverDsSwapped {
                domain,
                on_schedule: false,
            } => (domain, |s, _| s.off_schedule_ds += 1),
            Event::SignatureExpired { domain } => (domain, |s, _| s.expired_signatures += 1),
            _ => continue,
        };
        let entry = census.entry(operator_key_of(world, domain)).or_default();
        apply(entry, event);
    }
    census
}

/// Renders the census as a fixed-width table, one operator per row,
/// sorted by completed-rollover volume (ties by key). Empty input
/// renders a single explanatory line.
pub fn rollover_census_table(census: &BTreeMap<String, OperatorRolloverStats>) -> String {
    if census.is_empty() {
        return "no key-lifecycle events logged\n".into();
    }
    let mut rows: Vec<(&String, &OperatorRolloverStats)> = census.iter().collect();
    rows.sort_by(|a, b| {
        b.1.completed()
            .cmp(&a.1.completed())
            .then_with(|| a.0.cmp(b.0))
    });
    let mut out = String::from(
        "operator              prepub-zsk  double-ksk  algorithm  abrupt  off-sched-ds  expired-sigs\n",
    );
    for (op, s) in rows {
        out.push_str(&format!(
            "{op:<20} {:>11} {:>11} {:>10} {:>7} {:>13} {:>13}\n",
            s.prepublish_zsk,
            s.double_signature_ksk,
            s.algorithm,
            s.abrupt,
            s.off_schedule_ds,
            s.expired_signatures,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_ecosystem::{
        DsTiming, Hosting, OperatorDnssec, Plan, RegistrarPolicy, RolloverPlan, TldPolicy,
        TldRole, World, WorldConfig, ALL_TLDS,
    };

    fn census_world() -> (World, Name, Name) {
        let mut w = World::new(WorldConfig {
            key_pool: 2,
            ..WorldConfig::default()
        });
        let policy = RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: dsec_ecosystem::ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        };
        let r = w.add_registrar("CensusReg", Name::parse("censusreg.net").unwrap(), policy);
        let a = w
            .purchase(
                r,
                "alpha",
                dsec_ecosystem::Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "a@x.com",
            )
            .unwrap();
        let b = w
            .purchase(
                r,
                "beta",
                dsec_ecosystem::Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "b@x.com",
            )
            .unwrap();
        (w, a, b)
    }

    #[test]
    fn census_counts_styles_and_incidents_per_operator() {
        let (mut w, a, b) = census_world();
        let plan = RolloverPlan::correct(
            dsec_ecosystem::RolloverStyle::DoubleSignatureKsk,
            w.today.plus_days(1),
        )
        .with_ds_timing(DsTiming::Late { days: 5 });
        let done = plan.actual_swap().unwrap().plus_days(1);
        w.schedule_rollover(&a, plan).unwrap();
        w.roll_keys_abrupt(&b).unwrap();
        w.advance_to(done);

        let census = rollover_census(&w);
        let ops: Vec<&String> = census.keys().collect();
        assert_eq!(ops.len(), 1, "both domains host on the registrar's operator: {ops:?}");
        let stats = census.values().next().unwrap();
        assert_eq!(stats.double_signature_ksk, 1);
        assert_eq!(stats.abrupt, 1);
        assert_eq!(stats.off_schedule_ds, 1, "the late DS swap is an incident");
        assert_eq!(stats.completed(), 1);
        assert_eq!(stats.incidents(), 2);

        let table = rollover_census_table(&census);
        assert!(table.contains("censusreg"), "{table}");
        assert!(table.lines().count() >= 2);
    }

    #[test]
    fn empty_world_renders_explanatory_line() {
        let (w, _, _) = census_world();
        let census = rollover_census(&w);
        assert!(census.is_empty());
        assert!(rollover_census_table(&census).contains("no key-lifecycle events"));
    }
}
