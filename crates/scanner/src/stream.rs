//! Streaming snapshot store: campaigns that spill instead of materialize.
//!
//! [`crate::LongitudinalStore`] keeps every snapshot of a campaign in
//! memory. Each snapshot is already aggregated — O(operators × TLDs)
//! cells, not O(domains) — but a population-scale campaign additionally
//! wants the *day pipeline* overlapped: day N's scan running while day
//! N−1's finished cells are serialized out. This module provides both
//! halves:
//!
//! * [`SnapshotWriter`] spills each finished [`Snapshot`] to a compact
//!   binary row format (append-only, date-ordered), so the campaign's
//!   resident set stays bounded by one day's accumulators no matter how
//!   many snapshots the window holds;
//! * [`StreamedStore`] replays a spill file into the exact CSV exports
//!   of [`crate::LongitudinalStore`] — byte-identical, by construction
//!   of the same gap-day zero-filling in two passes over the file;
//! * [`scan_campaign_streamed`] runs a cached campaign with day-level
//!   pipelining: the scanner thread hands each finished snapshot over a
//!   bounded channel to a writer thread that owns the spill file.
//!
//! ## Spill format
//!
//! Little-endian, append-only; one frame per snapshot:
//!
//! ```text
//! magic  "DSECSNAP" (8 bytes, file head only)  version u16 = 1
//! frame: date u32 | cell_count u32 | cell*
//! cell:  tld u8 | op_len u16 | op bytes | 8 × u64 counters
//! ```
//!
//! Cells are written in the snapshot's `BTreeMap` order (operator, then
//! TLD), so a spill file is a deterministic function of the campaign.
//!
//! ## Pipelining barrier rules
//!
//! * Snapshots cross the channel in date order; the channel is bounded
//!   at one in-flight snapshot, so the scanner is never more than one
//!   day ahead of the writer (bounded memory, bounded skew).
//! * The writer thread owns the file; the scanner never touches it.
//! * The writer consumes only finished, owned snapshot data — it cannot
//!   observe or perturb the world, so scan results are byte-identical
//!   to the sequential path.
//! * Joining the writer (in [`scan_campaign_streamed`]) surfaces any
//!   I/O error after the last snapshot is recorded.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;

use dsec_ecosystem::{SimDate, Tld, World, ALL_TLDS};

use crate::cache::ScanCache;
use crate::snapshot::{OperatorStats, Snapshot};
use crate::CampaignConfig;

const MAGIC: &[u8; 8] = b"DSECSNAP";
const VERSION: u16 = 1;

/// Serializes snapshots into an append-only spill file.
#[derive(Debug)]
pub struct SnapshotWriter {
    out: BufWriter<File>,
    snapshots: u32,
    last_date: Option<SimDate>,
}

impl SnapshotWriter {
    /// Creates (truncating) the spill file and writes the header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(SnapshotWriter {
            out,
            snapshots: 0,
            last_date: None,
        })
    }

    /// Appends one snapshot frame (dates must be non-decreasing, exactly
    /// as for [`crate::LongitudinalStore::record`]).
    pub fn record(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        if let Some(last) = self.last_date {
            assert!(
                last <= snapshot.date,
                "snapshots must be appended in date order"
            );
        }
        self.last_date = Some(snapshot.date);
        self.out.write_all(&snapshot.date.0.to_le_bytes())?;
        self.out
            .write_all(&(snapshot.cells.len() as u32).to_le_bytes())?;
        for ((operator, tld), stats) in &snapshot.cells {
            self.out.write_all(&[*tld as u8])?;
            let op = operator.as_bytes();
            self.out.write_all(&(op.len() as u16).to_le_bytes())?;
            self.out.write_all(op)?;
            for v in [
                stats.domains,
                stats.with_dnskey,
                stats.with_ds,
                stats.fully_deployed,
                stats.partially_deployed,
                stats.misconfigured,
                stats.unreachable,
                stats.indeterminate,
            ] {
                self.out.write_all(&v.to_le_bytes())?;
            }
        }
        self.snapshots += 1;
        Ok(())
    }

    /// Flushes and closes the file, returning the snapshot count.
    pub fn finish(mut self) -> io::Result<u32> {
        self.out.flush()?;
        Ok(self.snapshots)
    }
}

fn read_exact<const N: usize>(input: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf)?;
    Ok(buf)
}

fn tld_from_u8(b: u8) -> io::Result<Tld> {
    ALL_TLDS
        .iter()
        .copied()
        .find(|&t| t as u8 == b)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown TLD tag"))
}

/// Replays every frame of a spill file, invoking `visit` with each
/// snapshot's date and cells (in stored — i.e. `BTreeMap` — order).
/// Memory is bounded by the largest single frame.
fn replay(
    path: &Path,
    mut visit: impl FnMut(SimDate, &[(String, Tld, OperatorStats)]),
) -> io::Result<()> {
    let mut input = BufReader::new(File::open(path)?);
    let magic = read_exact::<8>(&mut input)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u16::from_le_bytes(read_exact::<2>(&mut input)?);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported spill version",
        ));
    }
    let mut cells: Vec<(String, Tld, OperatorStats)> = Vec::new();
    loop {
        let date = match read_exact::<4>(&mut input) {
            Ok(bytes) => SimDate(u32::from_le_bytes(bytes)),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let count = u32::from_le_bytes(read_exact::<4>(&mut input)?);
        cells.clear();
        cells.reserve(count as usize);
        for _ in 0..count {
            let tld = tld_from_u8(read_exact::<1>(&mut input)?[0])?;
            let op_len = u16::from_le_bytes(read_exact::<2>(&mut input)?) as usize;
            let mut op = vec![0u8; op_len];
            input.read_exact(&mut op)?;
            let operator = String::from_utf8(op)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "operator not UTF-8"))?;
            let mut counters = [0u64; 8];
            for c in &mut counters {
                *c = u64::from_le_bytes(read_exact::<8>(&mut input)?);
            }
            cells.push((
                operator,
                tld,
                OperatorStats {
                    domains: counters[0],
                    with_dnskey: counters[1],
                    with_ds: counters[2],
                    fully_deployed: counters[3],
                    partially_deployed: counters[4],
                    misconfigured: counters[5],
                    unreachable: counters[6],
                    indeterminate: counters[7],
                },
            ));
        }
        visit(date, &cells);
    }
}

/// A finished spill file: the on-disk counterpart of
/// [`crate::LongitudinalStore`], replayed on demand.
#[derive(Debug, Clone)]
pub struct StreamedStore {
    path: PathBuf,
    snapshots: u32,
}

impl StreamedStore {
    /// Opens an existing spill file (validates the header and counts
    /// frames).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut snapshots = 0u32;
        replay(&path, |_, _| snapshots += 1)?;
        Ok(StreamedStore { path, snapshots })
    }

    /// The spill file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of snapshots in the file.
    pub fn len(&self) -> u32 {
        self.snapshots
    }

    /// Whether the file holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots == 0
    }

    /// Rebuilds the full in-memory store (tests and small campaigns; a
    /// population-scale consumer should replay instead).
    pub fn to_longitudinal(&self) -> io::Result<crate::LongitudinalStore> {
        let mut store = crate::LongitudinalStore::new();
        replay(&self.path, |date, cells| {
            let mut snapshot = Snapshot {
                date,
                cells: std::collections::BTreeMap::new(),
            };
            for (operator, tld, stats) in cells {
                snapshot.cells.insert((operator.clone(), *tld), *stats);
            }
            store.record(snapshot);
        })?;
        Ok(store)
    }

    /// The TLDs `operator` was ever seen in, sorted — the row skeleton
    /// both CSV exports share with [`crate::LongitudinalStore`].
    fn operator_tlds(&self, operator: &str) -> io::Result<Vec<Tld>> {
        let mut tlds: Vec<Tld> = Vec::new();
        replay(&self.path, |_, cells| {
            for (op, tld, _) in cells {
                if op == operator && !tlds.contains(tld) {
                    tlds.push(*tld);
                }
            }
        })?;
        tlds.sort();
        Ok(tlds)
    }

    /// Streams one operator's rows — `(date, tld, stats)` with explicit
    /// all-zero cells on gap days, exactly like the in-memory store's
    /// row builder — into `emit`. Two passes over the file; memory stays
    /// O(TLDs), independent of campaign length.
    fn rows(
        &self,
        operator: &str,
        mut emit: impl FnMut(SimDate, Tld, OperatorStats),
    ) -> io::Result<()> {
        let tlds = self.operator_tlds(operator)?;
        replay(&self.path, |date, cells| {
            for &tld in &tlds {
                let stats = cells
                    .iter()
                    .find(|(op, t, _)| op == operator && *t == tld)
                    .map(|(_, _, s)| *s)
                    .unwrap_or_default();
                emit(date, tld, stats);
            }
        })
    }

    /// CSV of one operator's series, byte-identical to
    /// [`crate::LongitudinalStore::to_csv`] over the same snapshots.
    pub fn to_csv(&self, operator: &str) -> io::Result<String> {
        let mut out = String::from(
            "date,operator,tld,domains,with_dnskey,with_ds,fully_deployed,partially_deployed,misconfigured\n",
        );
        self.rows(operator, |date, tld, stats| {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                date,
                operator,
                tld.label(),
                stats.domains,
                stats.with_dnskey,
                stats.with_ds,
                stats.fully_deployed,
                stats.partially_deployed,
                stats.misconfigured,
            ));
        })?;
        Ok(out)
    }

    /// Degradation-aware CSV, byte-identical to
    /// [`crate::LongitudinalStore::to_csv_extended`].
    pub fn to_csv_extended(&self, operator: &str) -> io::Result<String> {
        let mut out = String::from(
            "date,operator,tld,domains,with_dnskey,with_ds,fully_deployed,partially_deployed,misconfigured,unreachable,indeterminate\n",
        );
        self.rows(operator, |date, tld, stats| {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                date,
                operator,
                tld.label(),
                stats.domains,
                stats.with_dnskey,
                stats.with_ds,
                stats.fully_deployed,
                stats.partially_deployed,
                stats.misconfigured,
                stats.unreachable,
                stats.indeterminate,
            ));
        })?;
        Ok(out)
    }
}

/// [`crate::scan_campaign_cached`] with day-level pipelining and disk
/// spilling: day N's scan overlaps day N−1's export. A writer thread
/// owns the spill file; finished snapshots cross a bounded (capacity 1)
/// channel in date order, so the campaign's resident set is one day of
/// accumulators plus at most one snapshot in flight — independent of
/// window length. Scan results are byte-identical to the sequential
/// in-memory path (the writer only serializes owned, finished data).
pub fn scan_campaign_streamed(
    world: &mut World,
    config: &CampaignConfig,
    cache: &mut ScanCache,
    path: &Path,
) -> io::Result<StreamedStore> {
    let mut writer = SnapshotWriter::create(path)?;
    let (tx, rx) = mpsc::sync_channel::<Snapshot>(1);
    let result = thread::scope(|scope| -> io::Result<()> {
        let io_thread = scope.spawn(move || -> io::Result<u32> {
            while let Ok(snapshot) = rx.recv() {
                writer.record(&snapshot)?;
            }
            writer.finish()
        });
        let options = crate::ScanOptions {
            threads: config.threads,
            retry_rounds: config.retry_rounds,
            retry_limit: config.retry_limit,
            force_full: false,
        };
        world.begin_scan_epoch();
        let send = |snapshot: Snapshot| {
            // A send fails only if the writer died on an I/O error; stop
            // scanning and surface the error from the join below.
            tx.send(snapshot).is_ok()
        };
        let mut alive = send(Snapshot::take_cached(world, &config.tlds, &options, cache));
        while alive && world.today < config.until {
            for _ in 0..config.interval_days {
                if world.today >= config.until {
                    break;
                }
                world.tick();
            }
            world.begin_scan_epoch();
            alive = send(Snapshot::take_cached(world, &config.tlds, &options, cache));
        }
        drop(tx);
        io_thread
            .join()
            .expect("snapshot writer thread does not panic")?;
        Ok(())
    });
    result?;
    StreamedStore::open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LongitudinalStore;
    use std::collections::BTreeMap;

    fn snapshot(day: u32, cells: &[(&str, Tld, u64)]) -> Snapshot {
        let mut map = BTreeMap::new();
        for &(op, tld, domains) in cells {
            map.insert(
                (op.to_string(), tld),
                OperatorStats {
                    domains,
                    with_dnskey: domains / 2,
                    ..OperatorStats::default()
                },
            );
        }
        Snapshot {
            date: SimDate(day),
            cells: map,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dsec-stream-test-{}-{}", std::process::id(), name))
    }

    #[test]
    fn roundtrip_preserves_snapshots() {
        let path = temp_path("roundtrip");
        let snaps = [
            snapshot(0, &[("a.net", Tld::Com, 10), ("b.net", Tld::Nl, 3)]),
            snapshot(7, &[("a.net", Tld::Com, 12)]),
        ];
        let mut writer = SnapshotWriter::create(&path).unwrap();
        for s in &snaps {
            writer.record(s).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), 2);

        let store = StreamedStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        let rebuilt = store.to_longitudinal().unwrap();
        assert_eq!(rebuilt.snapshots().len(), 2);
        assert_eq!(rebuilt.snapshots()[0].cells, snaps[0].cells);
        assert_eq!(rebuilt.snapshots()[1].cells, snaps[1].cells);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_replay_matches_in_memory_store_including_gap_days() {
        let path = temp_path("csv");
        // a.net leaves .nl after day 0: the replayed CSV must zero-fill
        // exactly like the in-memory store.
        let snaps = [
            snapshot(0, &[("a.net", Tld::Com, 10), ("a.net", Tld::Nl, 3)]),
            snapshot(7, &[("a.net", Tld::Com, 12), ("c.net", Tld::Se, 1)]),
        ];
        let mut memory = LongitudinalStore::new();
        let mut writer = SnapshotWriter::create(&path).unwrap();
        for s in &snaps {
            memory.record(s.clone());
            writer.record(s).unwrap();
        }
        writer.finish().unwrap();
        let streamed = StreamedStore::open(&path).unwrap();
        for op in ["a.net", "c.net", "ghost.net"] {
            assert_eq!(streamed.to_csv(op).unwrap(), memory.to_csv(op));
            assert_eq!(
                streamed.to_csv_extended(op).unwrap(),
                memory.to_csv_extended(op)
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a spill file").unwrap();
        assert!(StreamedStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
