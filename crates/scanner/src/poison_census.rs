//! Per-registrar cache-poison census.
//!
//! The takeover census reads signals an attacker leaves in the
//! *registry* (DS mismatch, NS drift). A cache-poisoning attacker
//! leaves no registry trace at all — the forgery lives only in resolver
//! caches. The observable signal is the one real-world poison scans
//! use: ask the resolver cache and the authoritative servers the same
//! question and compare the bytes. A cached answer whose A records
//! diverge from what the delegated nameservers serve is a poisoned
//! entry; the census tallies those under the victim domain's sponsoring
//! registrar, keeping the paper's attribution axis even for an attack
//! the registrar's channel had no part in (the defense here is the
//! resolver's entropy profile, not channel authentication — the row
//! shows which registrar's *customers* absorbed the damage).

use std::collections::BTreeMap;

use dsec_ecosystem::{Tld, World};
use dsec_resolver::Cache;
use dsec_wire::{Message, Name, RData, RrType};

/// Poison tallies for one registrar's customer domains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrarPoisonStats {
    /// Probed names with a cached A answer to compare.
    pub cached_names: u64,
    /// Cached answers whose A records diverge from the authoritative
    /// wire answer — poisoned entries.
    pub poisoned_names: u64,
}

impl RegistrarPoisonStats {
    /// Fraction of compared cache entries that were poisoned.
    pub fn poison_rate(&self) -> f64 {
        if self.cached_names == 0 {
            0.0
        } else {
            self.poisoned_names as f64 / self.cached_names as f64
        }
    }
}

/// The sorted A RDATA set the domain's delegated nameservers serve for
/// `qname`, or `None` when nothing authoritative answered.
fn authoritative_a(world: &World, domain: &Name, qname: &Name) -> Option<Vec<std::net::Ipv4Addr>> {
    let tld = Tld::of_domain(domain)?;
    let ns_hosts = world.registry(tld).ns_of(domain);
    let query = Message::query(0, qname.clone(), RrType::A, true);
    let response = ns_hosts
        .iter()
        .find_map(|ns| world.network.query(ns, &query))?;
    let mut addrs: Vec<std::net::Ipv4Addr> = response
        .answers
        .iter()
        .filter(|r| r.name == *qname)
        .filter_map(|r| match &r.rdata {
            RData::A(addr) => Some(*addr),
            _ => None,
        })
        .collect();
    addrs.sort();
    Some(addrs)
}

/// Builds the census: for every registered domain, probes the shared
/// resolver `cache` at the apex and `www` for an A answer as of `now`
/// (sim seconds) and compares it byte-for-byte against the
/// authoritative wire answer. Divergent entries tally as poisoned under
/// the domain's registrar. Deterministic: the cache reads don't mutate
/// entry state and the sweep visits domains in store order.
pub fn poison_census(
    world: &World,
    cache: &Cache,
    now: u32,
) -> BTreeMap<String, RegistrarPoisonStats> {
    let mut census: BTreeMap<String, RegistrarPoisonStats> = BTreeMap::new();
    for d in world.domains() {
        let mut probes = vec![d.name.clone()];
        if let Ok(www) = d.name.child("www") {
            probes.push(www);
        }
        for qname in probes {
            let Some(cached) = cache.get(&qname, RrType::A, now) else {
                continue;
            };
            let mut cached_a: Vec<std::net::Ipv4Addr> = cached
                .records
                .iter()
                .filter(|r| r.name == qname)
                .filter_map(|r| match &r.rdata {
                    RData::A(addr) => Some(*addr),
                    _ => None,
                })
                .collect();
            cached_a.sort();
            let Some(served_a) = authoritative_a(world, &d.name, &qname) else {
                continue;
            };
            let entry = census
                .entry(world.registrar(d.registrar).name.clone())
                .or_default();
            entry.cached_names += 1;
            if cached_a != served_a {
                entry.poisoned_names += 1;
            }
        }
    }
    census.retain(|_, s| s.cached_names > 0);
    census
}

/// Renders the census as a fixed-width table, one registrar per row,
/// sorted by poisoned volume (ties by name). Empty input renders a
/// single explanatory line.
pub fn poison_census_table(census: &BTreeMap<String, RegistrarPoisonStats>) -> String {
    if census.is_empty() {
        return "no cached answers to compare\n".into();
    }
    let mut rows: Vec<(&String, &RegistrarPoisonStats)> = census.iter().collect();
    rows.sort_by(|a, b| {
        b.1.poisoned_names
            .cmp(&a.1.poisoned_names)
            .then_with(|| a.0.cmp(b.0))
    });
    let mut out = String::from("registrar                cached  poisoned  poison-rate\n");
    for (reg, s) in rows {
        out.push_str(&format!(
            "{reg:<20} {:>10} {:>9} {:>11.4}\n",
            s.cached_names,
            s.poisoned_names,
            s.poison_rate(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_ecosystem::{
        ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, TldPolicy, TldRole, WorldConfig,
        ALL_TLDS,
    };
    use dsec_resolver::{Answer, Security, POISON_A};
    use dsec_wire::{Rcode, Record};

    fn world_with_domain() -> (World, Name) {
        let mut w = World::new(WorldConfig {
            key_pool: 2,
            ..WorldConfig::default()
        });
        let policy = RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Ticket,
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        };
        let r = w.add_registrar("Probed", Name::parse("probed.net").unwrap(), policy);
        let v = w
            .purchase(r, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
            .unwrap();
        (w, v)
    }

    fn answer_with(records: Vec<Record>) -> Answer {
        Answer {
            records,
            rcode: Rcode::NoError,
            security: Security::Insecure,
            chain: Vec::new(),
            negative_ttl: None,
            poisoned: false,
        }
    }

    #[test]
    fn faithful_cache_entries_are_not_poisoned() {
        let (w, v) = world_with_domain();
        let www = v.child("www").unwrap();
        let served = authoritative_a(&w, &v, &www).expect("zone serves www");
        assert!(!served.is_empty());
        let cache = Cache::new();
        let records: Vec<Record> = served
            .iter()
            .map(|a| Record::new(www.clone(), 300, RData::A(*a)))
            .collect();
        cache.put(&www, RrType::A, &answer_with(records), 0);

        let census = poison_census(&w, &cache, 10);
        let stats = census.get("Probed").expect("registrar row");
        assert_eq!(stats.cached_names, 1);
        assert_eq!(stats.poisoned_names, 0);
        assert_eq!(stats.poison_rate(), 0.0);
    }

    #[test]
    fn diverging_cache_entry_tallies_as_poisoned() {
        let (w, v) = world_with_domain();
        let www = v.child("www").unwrap();
        let cache = Cache::new();
        let forged = vec![Record::new(www.clone(), 300, RData::A(POISON_A))];
        cache.put(&www, RrType::A, &answer_with(forged), 0);

        let census = poison_census(&w, &cache, 10);
        let stats = census.get("Probed").expect("registrar row");
        assert_eq!(stats.cached_names, 1);
        assert_eq!(stats.poisoned_names, 1, "forged bytes diverge from the wire");
        let table = poison_census_table(&census);
        assert!(table.contains("Probed"), "{table}");
        assert!(poison_census_table(&BTreeMap::new()).contains("no cached answers"));
    }

    #[test]
    fn empty_cache_yields_empty_census() {
        let (w, _) = world_with_domain();
        assert!(poison_census(&w, &Cache::new(), 0).is_empty());
    }
}
