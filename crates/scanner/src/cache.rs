//! The incremental scan cache: OpenINTEL-style cross-day reuse.
//!
//! A daily campaign re-scans every delegation in every studied TLD, but
//! between two consecutive days only a small fraction of domains change
//! (a signing, a DS upload, a hosting move). The ecosystem tracks a
//! per-domain *change generation* ([`dsec_ecosystem::World::domain_generation`])
//! that is bumped by every mutation a scan could observe; this cache
//! keys one classified per-domain stats cell on that generation so an
//! unchanged domain costs a map lookup instead of DNSKEY queries and
//! RSA signature verification.
//!
//! Each entry also remembers the domain's operator key: the operator is
//! derived from the NS set, every NS edit bumps the generation, so a
//! generation match guarantees the operator is current too. A warm hit
//! therefore skips the zone-file NS lookup as well as the queries.
//!
//! Invalidation rules (see DESIGN.md §9):
//! * an entry is reused only when the stored generation equals the
//!   domain's current generation;
//! * unreachable/indeterminate outcomes are **never** cached — a failed
//!   observation is re-attempted every snapshot;
//! * entries for domains that left the zone files are pruned after
//!   every cached scan, so the cache never outgrows the live population.
//!
//! Keys are packed [`DomainKey`]s — the registry's columnar row id, not
//! the `Name`. The columnar enumeration hands each scan item its row and
//! generation in one dense sweep, so the warm path hashes one integer
//! per domain and never touches name bytes at all.

use std::sync::{Arc, RwLock, RwLockReadGuard};

use dsec_ecosystem::Tld;
use dsec_wire::{FnvHashMap, FnvHashSet};

use crate::snapshot::OperatorStats;

/// The scan-scope-stable identity of one delegation: the studied TLD in
/// the high 32 bits, the registry's columnar row in the low 32. Rows are
/// never reused within a world ([`dsec_ecosystem::DomainTable`] keeps
/// dead rows), so a key can only ever mean one name.
pub type DomainKey = u64;

/// Packs a (TLD, columnar row) pair into a [`DomainKey`].
#[inline]
pub fn domain_key(tld: Tld, row: u32) -> DomainKey {
    ((tld as u64) << 32) | row as u64
}

#[derive(Debug, Clone)]
struct CacheEntry {
    generation: u64,
    operator: Arc<str>,
    stats: OperatorStats,
}

/// Point-in-time counters of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (domain unchanged).
    pub hits: u64,
    /// Lookups that fell through to a real scan (changed, new, forced,
    /// or previously unobservable).
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cross-snapshot cache of classified per-domain scan results.
#[derive(Debug, Clone, Default)]
pub struct ScanCache {
    entries: FnvHashMap<DomainKey, CacheEntry>,
    hits: u64,
    misses: u64,
    /// (scan-scope fingerprint, summed registry population epoch) at the
    /// last departed-domain prune. The prune rehashes the whole
    /// population, so scans skip it while no delegation was added or
    /// removed — the epoch moves exactly when the population set does.
    pruned_at: Option<(u64, u64)>,
}

impl ScanCache {
    /// An empty cache: the first scan through it is fully cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached (operator key, stats cell) for `key` if it was
    /// classified at exactly `generation`. Counts a hit or a miss.
    pub fn lookup(&mut self, key: DomainKey, generation: u64) -> Option<(Arc<str>, OperatorStats)> {
        match self.entries.get(&key) {
            Some(entry) if entry.generation == generation => {
                self.hits += 1;
                Some((entry.operator.clone(), entry.stats))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// The cached (operator key, stats cell) for `key` if it was
    /// classified at exactly `generation`, **without** touching the
    /// hit/miss counters. This is the shared-read half of the parallel
    /// cache pass: workers peek through `&ScanCache` concurrently and
    /// tally hits/misses privately, then the merge step records them
    /// once via [`ScanCache::note_lookups`].
    pub fn peek(&self, key: DomainKey, generation: u64) -> Option<(Arc<str>, OperatorStats)> {
        match self.entries.get(&key) {
            Some(entry) if entry.generation == generation => {
                Some((entry.operator.clone(), entry.stats))
            }
            _ => None,
        }
    }

    /// Folds externally tallied lookup counts (from [`ScanCache::peek`]
    /// passes) into the effectiveness counters.
    pub(crate) fn note_lookups(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Stores the classified cell for `key` at `generation`. Callers
    /// must not insert unobserved (unreachable/indeterminate) outcomes;
    /// this is enforced with a debug assertion.
    pub fn insert(
        &mut self,
        key: DomainKey,
        generation: u64,
        operator: Arc<str>,
        stats: OperatorStats,
    ) {
        debug_assert_eq!(
            stats.unobserved(),
            0,
            "unobserved outcomes must never be cached"
        );
        self.entries.insert(
            key,
            CacheEntry {
                generation,
                operator,
                stats,
            },
        );
    }

    /// Drops entries for domains not in `live`: keeps the cache bounded
    /// by the current population.
    pub fn retain_live(&mut self, live: &FnvHashSet<DomainKey>) {
        self.entries.retain(|key, _| live.contains(key));
    }

    /// Whether a departed-domain prune is due for a scan scope identified
    /// by `fingerprint` whose registries sum to `epoch`: true unless the
    /// last prune saw the exact same (scope, epoch), i.e. unless no
    /// delegation can have been added or removed since.
    pub(crate) fn needs_prune(&self, fingerprint: u64, epoch: u64) -> bool {
        self.pruned_at != Some((fingerprint, epoch))
    }

    /// Records that the cache was pruned against the population state
    /// identified by (`fingerprint`, `epoch`).
    pub(crate) fn note_pruned(&mut self, fingerprint: u64, epoch: u64) {
        self.pruned_at = Some((fingerprint, epoch));
    }

    /// Number of cached domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything, including the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.pruned_at = None;
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
        }
    }
}

/// World-lifetime scan memo: the second cache level under [`ScanCache`].
///
/// A [`ScanCache`] lives with one campaign, so every new campaign —
/// and every bench run that deliberately starts one cold — re-scans a
/// world whose authority plane is unchanged. The memo holds the same
/// generation-stamped classified cells, but it is parked in the
/// world's [`dsec_ecosystem::Annex`] and therefore lives exactly as
/// long as the world: the cache pass probes it on every [`ScanCache`]
/// miss, so a *fresh* cache over an already-scanned world costs one
/// extra map probe per domain instead of DNSKEY queries and RSA
/// verification. Memo hits are never written back into the
/// [`ScanCache`] — both levels are probed in the same fused sweep, so
/// a write-back would buy nothing and cold scans would pay an insert
/// per domain.
///
/// It follows [`ScanCache`]'s invalidation rules to the letter (exact
/// generation match; unobserved outcomes never stored), and two extra
/// guards keep it pure: the scan pipeline bypasses it entirely while
/// the fault plane is enabled (failure draws must not be replayed from
/// a cache) and under `force_full` (a ground-truth scan must not read
/// any cache). Entries for departed domains are left in place — a
/// re-registered name resumes its *row* (rows are per-name-stable) at
/// a strictly larger generation, so they can never be served.
///
/// The memo is an optimization, not working state, so its size is hard
/// capped ([`MEMO_CAP`] entries): a full memo keeps refreshing keys it
/// already holds (their generation moved) but admits no new keys. Below
/// the cap the map stays bounded by every name the world has ever
/// delegated; past it, campaigns simply lean on their own per-campaign
/// [`ScanCache`], which is unaffected.
#[derive(Debug)]
pub(crate) struct ScanMemo {
    entries: RwLock<FnvHashMap<DomainKey, CacheEntry>>,
    cap: usize,
}

/// World-lifetime memo entry cap: comfortably above the 1:200-scale
/// population (~743 K), deliberately below 1:20 (~7.4 M) so the memo's
/// footprint stops tracking the population at campaign scale.
const MEMO_CAP: usize = 2 * 1024 * 1024;

impl Default for ScanMemo {
    fn default() -> Self {
        Self::with_capacity(MEMO_CAP)
    }
}

impl ScanMemo {
    /// A memo admitting at most `cap` keys (tests use tiny caps; the
    /// world annex uses [`MEMO_CAP`] via `default`).
    pub(crate) fn with_capacity(cap: usize) -> Self {
        Self {
            entries: RwLock::new(FnvHashMap::default()),
            cap,
        }
    }
    /// A read view for one worker's sweep: the lock is taken once per
    /// chunk, not once per probe. Readers share; [`ScanMemo::store`]
    /// waits until every view is dropped.
    pub(crate) fn view(&self) -> MemoView<'_> {
        MemoView {
            entries: self.entries.read().expect("scan memo lock"),
        }
    }

    /// Stores freshly classified cells, under one write lock. A full
    /// memo refreshes keys it already holds and drops the rest.
    /// Unobserved outcomes must be filtered out by the caller, exactly
    /// as for [`ScanCache::insert`].
    pub(crate) fn store(
        &self,
        cells: impl IntoIterator<Item = (DomainKey, u64, Arc<str>, OperatorStats)>,
    ) {
        let mut entries = self.entries.write().expect("scan memo lock");
        for (key, generation, operator, stats) in cells {
            debug_assert_eq!(
                stats.unobserved(),
                0,
                "unobserved outcomes must never be cached"
            );
            if entries.len() >= self.cap && !entries.contains_key(&key) {
                continue;
            }
            entries.insert(
                key,
                CacheEntry {
                    generation,
                    operator,
                    stats,
                },
            );
        }
    }
}

/// A frozen read view of a [`ScanMemo`] (see [`ScanMemo::view`]).
pub(crate) struct MemoView<'a> {
    entries: RwLockReadGuard<'a, FnvHashMap<DomainKey, CacheEntry>>,
}

impl MemoView<'_> {
    /// The memoized (operator key, stats cell) for `key` if it was
    /// classified at exactly `generation`.
    pub(crate) fn get(&self, key: DomainKey, generation: u64) -> Option<(Arc<str>, OperatorStats)> {
        match self.entries.get(&key) {
            Some(entry) if entry.generation == generation => {
                Some((entry.operator.clone(), entry.stats))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(row: u32) -> DomainKey {
        domain_key(Tld::Com, row)
    }

    fn op(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    fn cell(domains: u64) -> OperatorStats {
        OperatorStats {
            domains,
            ..OperatorStats::default()
        }
    }

    #[test]
    fn packed_keys_separate_tlds_and_rows() {
        assert_ne!(domain_key(Tld::Com, 7), domain_key(Tld::Net, 7));
        assert_ne!(domain_key(Tld::Com, 7), domain_key(Tld::Com, 8));
        assert_eq!(domain_key(Tld::Nl, 3), domain_key(Tld::Nl, 3));
    }

    #[test]
    fn lookup_hits_only_on_matching_generation() {
        let mut cache = ScanCache::new();
        assert!(cache.lookup(key(0), 1).is_none(), "cold miss");
        cache.insert(key(0), 1, op("ns.host.net"), cell(1));
        assert_eq!(cache.lookup(key(0), 1), Some((op("ns.host.net"), cell(1))));
        assert!(cache.lookup(key(0), 2).is_none(), "stale generation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn retain_live_prunes_departed_domains() {
        let mut cache = ScanCache::new();
        cache.insert(key(0), 1, op("x.net"), cell(1));
        cache.insert(key(1), 1, op("x.net"), cell(1));
        let live: FnvHashSet<DomainKey> = [key(0)].into_iter().collect();
        cache.retain_live(&live);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(key(0), 1).is_some());
    }

    #[test]
    fn clear_resets_counters() {
        let mut cache = ScanCache::new();
        cache.insert(key(0), 1, op("x.net"), cell(1));
        cache.lookup(key(0), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "never be cached")]
    #[cfg(debug_assertions)]
    fn unobserved_outcomes_rejected() {
        let mut cache = ScanCache::new();
        let mut stats = cell(1);
        stats.unreachable = 1;
        cache.insert(key(0), 1, op("x.net"), stats);
    }

    #[test]
    fn memo_hits_only_on_exact_generation() {
        let memo = ScanMemo::default();
        memo.store([
            (key(0), 1, op("x.net"), cell(1)),
            (key(2), 5, op("y.net"), cell(1)),
        ]);
        let view = memo.view();
        assert_eq!(view.get(key(0), 1), Some((op("x.net"), cell(1))));
        assert_eq!(view.get(key(1), 9), None, "never stored");
        assert_eq!(view.get(key(2), 4), None, "stale generation");
        drop(view);

        // Refresh row 2 at its current generation: the next view hits.
        memo.store([(key(2), 4, op("y.net"), cell(1))]);
        assert_eq!(memo.view().get(key(2), 4), Some((op("y.net"), cell(1))));
    }

    #[test]
    fn memo_cap_refreshes_held_keys_but_admits_no_new_ones() {
        let memo = ScanMemo::with_capacity(2);
        memo.store([
            (key(0), 1, op("x.net"), cell(1)),
            (key(1), 1, op("x.net"), cell(1)),
            (key(2), 1, op("y.net"), cell(1)),
        ]);
        // Third key arrived over the cap: dropped, never served.
        assert_eq!(memo.view().get(key(2), 1), None);

        // Held keys still refresh in place at their new generation...
        memo.store([(key(0), 7, op("z.net"), cell(2))]);
        assert_eq!(memo.view().get(key(0), 7), Some((op("z.net"), cell(2))));
        assert_eq!(memo.view().get(key(0), 1), None, "old generation gone");

        // ...and a refresh does not open a slot for new keys.
        memo.store([(key(3), 1, op("x.net"), cell(1))]);
        assert_eq!(memo.view().get(key(3), 1), None);
        assert_eq!(memo.view().get(key(1), 1), Some((op("x.net"), cell(1))));
    }

    #[test]
    #[should_panic(expected = "never be cached")]
    #[cfg(debug_assertions)]
    fn memo_rejects_unobserved_outcomes() {
        let memo = ScanMemo::default();
        let mut stats = cell(1);
        stats.indeterminate = 1;
        memo.store([(key(0), 1, op("x.net"), stats)]);
    }
}
