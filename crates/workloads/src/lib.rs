//! # dsec-workloads — the paper-calibrated population
//!
//! [`spec`] encodes every named profile from the paper (Table 2's top-20
//! registrars, Table 3's DNSSEC-heavy registrars, Table 4's
//! registrar/reseller roles, the parking services of footnote 11, and the
//! §7 third parties) plus `// calibrated` values where the paper only
//! reports aggregates. [`population::build`] instantiates them into a
//! [`dsec_ecosystem::World`] at a configurable 1:N scale.

#![warn(missing_docs)]

pub mod population;
pub mod spec;

pub use population::{build, PaperWorld, PopulationConfig};
pub use spec::{QtypeMix, RegistrarSpec, TldLoad, TrafficMix};
