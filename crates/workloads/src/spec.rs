//! The paper-calibrated registrar/operator profiles.
//!
//! Every named profile corresponds to a row of Table 2 (top-20 registrars
//! by market share), Table 3 (top-10 registrars by DNSSEC footprint),
//! Table 4 (registrar-vs-reseller roles per TLD), footnote 11 (parking
//! services), or §7 (third-party operators). Counts are the paper's
//! absolute numbers; the builder divides them by the configured scale.
//!
//! Where the paper gives only aggregates (ccTLD market shares), values are
//! chosen to reproduce the published aggregates (Table 1 percentages and
//! the per-registrar adoption ratios quoted in §5–6) and are marked
//! `// calibrated`.

use dsec_ecosystem::{ExternalDs, OperatorDnssec, Plan, PolicyChange, SimDate, Tld, TldPolicy, TldRole};

/// Per-TLD population parameters for one registrar.
#[derive(Debug, Clone, Copy, Default)]
pub struct TldLoad {
    /// Domains at full (1:1) scale.
    pub domains: u64,
    /// Fraction already signed (DNSKEY published) at the window start
    /// (2015-03-01).
    pub signed_at_start: f64,
    /// Fraction signed by the window end (2016-12-31); the builder derives
    /// the daily opt-in hazard from start → end.
    pub signed_at_end: f64,
}

impl TldLoad {
    /// A population with a constant signed fraction.
    pub fn steady(domains: u64, signed: f64) -> Self {
        TldLoad {
            domains,
            signed_at_start: signed,
            signed_at_end: signed,
        }
    }

    /// A population whose signed fraction grows over the window.
    pub fn growing(domains: u64, start: f64, end: f64) -> Self {
        TldLoad {
            domains,
            signed_at_start: start,
            signed_at_end: end,
        }
    }
}

/// One registrar profile.
#[derive(Debug, Clone)]
pub struct RegistrarSpec {
    /// Display name (matches the paper's Tables).
    pub name: &'static str,
    /// Nameserver domain (the operator grouping key from §4.2).
    pub ns_domain: &'static str,
    /// DNSSEC-when-registrar-is-operator policy.
    pub operator_dnssec: OperatorDnssec,
    /// External DS channel.
    pub external_ds: ExternalDs,
    /// Per-TLD (role, publishes DS, load).
    pub tlds: Vec<(Tld, TldRole, bool, TldLoad)>,
    /// Dated milestones (relative to the simulation calendar).
    pub milestones: Vec<(SimDate, PolicyChange)>,
    /// Plan mix: fraction of hosted customers on a premium plan.
    pub premium_share: f64,
}

impl RegistrarSpec {
    fn plain(
        name: &'static str,
        ns_domain: &'static str,
        operator_dnssec: OperatorDnssec,
        external_ds: ExternalDs,
    ) -> Self {
        RegistrarSpec {
            name,
            ns_domain,
            operator_dnssec,
            external_ds,
            tlds: Vec::new(),
            milestones: Vec::new(),
            premium_share: 0.2,
        }
    }

    fn tld(mut self, tld: Tld, role: TldRole, publishes_ds: bool, load: TldLoad) -> Self {
        self.tlds.push((tld, role, publishes_ds, load));
        self
    }

    fn milestone(mut self, on: SimDate, change: PolicyChange) -> Self {
        self.milestones.push((on, change));
        self
    }

    /// The policy object for this spec.
    pub fn policy(&self) -> dsec_ecosystem::RegistrarPolicy {
        dsec_ecosystem::RegistrarPolicy {
            operator_dnssec: self.operator_dnssec.clone(),
            external_ds: self.external_ds.clone(),
            tlds: self
                .tlds
                .iter()
                .map(|(tld, role, publishes_ds, _)| {
                    (
                        *tld,
                        TldPolicy {
                            role: role.clone(),
                            publishes_ds: *publishes_ds,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Splits a combined .com/.net/.org count by the TLDs' DNSSEC-weighted
/// sizes (com 77%, net 13%, org 10% of signed domains).
fn split_gtld(total: u64) -> [u64; 3] {
    [
        total * 77 / 100,
        total * 13 / 100,
        total - total * 77 / 100 - total * 13 / 100,
    ]
}

fn d(y: u16, m: u8, day: u8) -> SimDate {
    SimDate::from_ymd(y, m, day)
}

/// Registrar role shorthand.
fn r() -> TldRole {
    TldRole::Registrar
}

fn via(partner: &str) -> TldRole {
    TldRole::ResellerVia(partner.to_string())
}

/// The top-20 registrars of Table 2 (market-share ordering), with their
/// probed DNSSEC policies.
pub fn table2_registrars() -> Vec<RegistrarSpec> {
    let web = |validates| ExternalDs::Web { validates };
    let email = |verifies_sender, accepts_foreign_sender, validates| ExternalDs::Email {
        verifies_sender,
        accepts_foreign_sender,
        validates,
    };
    let mut specs = Vec::new();

    // GoDaddy: paid DNSSEC ($35/yr) → 0.02% adoption; web DS upload, no
    // validation.
    let mut godaddy = RegistrarSpec::plain(
        "GoDaddy",
        "domaincontrol.com",
        OperatorDnssec::Paid {
            cents_per_year: 3500,
            adoption_rate: 0.0002,
        },
        web(false),
    );
    for (tld, count) in [
        (Tld::Com, split_gtld(37_652_477)[0]),
        (Tld::Net, split_gtld(37_652_477)[1]),
        (Tld::Org, split_gtld(37_652_477)[2]),
    ] {
        godaddy = godaddy.tld(tld, r(), true, TldLoad::growing(count, 0.0001, 0.0002));
    }
    godaddy = godaddy
        .tld(Tld::Nl, r(), true, TldLoad::steady(120_000, 0.0002)) // calibrated
        .tld(Tld::Se, r(), true, TldLoad::steady(30_000, 0.0002)); // calibrated
    specs.push(godaddy);

    // No-DNSSEC gTLD registrars (policy row: all ✗).
    let no_dnssec: [(&'static str, &'static str, u64); 8] = [
        ("Alibaba", "hichina.com", 4_292_138),
        ("1AND1", "1and1.sim", 3_802_824),
        ("NetworkSolutions", "worldnic.com", 2_534_673),
        ("Bluehost", "bluehost.com", 2_066_503),
        ("WIX", "wixdns.net", 1_887_139),
        ("register.com", "register.com", 1_311_969),
        ("WordPress", "wordpress.com", 888_174),
        ("Xinnet", "xincache.com", 836_293),
    ];
    for (name, ns, total) in no_dnssec {
        let mut s = RegistrarSpec::plain(
            name,
            ns,
            OperatorDnssec::Unsupported,
            ExternalDs::Unsupported,
        );
        let [c, n, o] = split_gtld(total);
        s = s
            .tld(Tld::Com, r(), false, TldLoad::steady(c, 0.0))
            .tld(Tld::Net, r(), false, TldLoad::steady(n, 0.0))
            .tld(Tld::Org, r(), false, TldLoad::steady(o, 0.0));
        specs.push(s);
    }

    // Yahoo: no DNSSEC (kept separate for ordering fidelity).
    let mut yahoo = RegistrarSpec::plain(
        "Yahoo",
        "yahoo.com",
        OperatorDnssec::Unsupported,
        ExternalDs::Unsupported,
    );
    let [c, n, o] = split_gtld(690_823);
    yahoo = yahoo
        .tld(Tld::Com, r(), false, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), false, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), false, TldLoad::steady(o, 0.0));
    specs.push(yahoo);

    // eNom: owner-operator only, via verified email.
    let mut enom = RegistrarSpec::plain(
        "eNom",
        "name-services.com",
        OperatorDnssec::Unsupported,
        email(true, false, false),
    );
    let [c, n, o] = split_gtld(2_525_828);
    enom = enom
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(enom);

    // NameCheap: DNSSEC by default on paid DNS plans only; DS published
    // for .com/.net but not .org (Table 3 footnote).
    let mut namecheap = RegistrarSpec::plain(
        "NameCheap",
        "registrar-servers.com",
        OperatorDnssec::DefaultOnPlans(vec![Plan::Premium]),
        web(false),
    );
    let [c, n, o] = split_gtld(1_963_717);
    namecheap = namecheap
        .tld(Tld::Com, r(), true, TldLoad::growing(c, 0.002, 0.0059))
        .tld(Tld::Net, r(), true, TldLoad::growing(n, 0.002, 0.0059))
        .tld(Tld::Org, via("eNom"), false, TldLoad::growing(o, 0.002, 0.0059));
    specs.push(namecheap);

    // HostGator: owner-operator DNSSEC via live chat (error-prone).
    let mut hostgator = RegistrarSpec::plain(
        "HostGator",
        "hostgator.com",
        OperatorDnssec::Unsupported,
        ExternalDs::Chat { mistake_rate: 0.02 },
    );
    let [c, n, o] = split_gtld(1_849_735);
    hostgator = hostgator
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(hostgator);

    // NameBright: email channel, does NOT verify the email.
    let mut namebright = RegistrarSpec::plain(
        "NameBright",
        "namebrightdns.com",
        OperatorDnssec::Unsupported,
        email(false, false, false),
    );
    let [c, n, o] = split_gtld(1_823_823);
    namebright = namebright
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(namebright);

    // OVH: free opt-in DNSSEC; validating web form. 25.9% signed by the
    // window end, ≈8% at the start (Figure 4).
    let mut ovh = RegistrarSpec::plain(
        "OVH",
        "ovh.net",
        OperatorDnssec::OptIn { adoption_rate: 0.26 },
        web(true),
    );
    let [c, n, o] = split_gtld(1_228_578);
    ovh = ovh
        .tld(Tld::Com, r(), true, TldLoad::growing(c, 0.08, 0.259))
        .tld(Tld::Net, r(), true, TldLoad::growing(n, 0.08, 0.259))
        .tld(Tld::Org, r(), true, TldLoad::growing(o, 0.08, 0.259))
        .tld(Tld::Nl, r(), true, TldLoad::growing(60_000, 0.08, 0.259)) // calibrated
        .tld(Tld::Se, r(), true, TldLoad::growing(15_000, 0.08, 0.259)); // calibrated
    specs.push(ovh);

    // DreamHost: email channel (unverified email!) but validates the DS.
    let mut dreamhost = RegistrarSpec::plain(
        "DreamHost",
        "dreamhost.com",
        OperatorDnssec::Unsupported,
        email(false, false, true),
    );
    let [c, n, o] = split_gtld(1_117_902);
    dreamhost = dreamhost
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(dreamhost);

    // Amazon Route 53: web upload (of a DNSKEY, from which it derives the
    // DS — modeled as FetchDnskey-adjacent web validation ▲).
    let mut amazon = RegistrarSpec::plain(
        "Amazon",
        "awsdns.sim",
        OperatorDnssec::Unsupported,
        web(false),
    );
    let [c, n, o] = split_gtld(865_065);
    amazon = amazon
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(amazon);

    // Google Domains: web upload, no validation.
    let mut google = RegistrarSpec::plain(
        "Google",
        "googledomains.com",
        OperatorDnssec::Unsupported,
        web(false),
    );
    let [c, n, o] = split_gtld(813_945);
    google = google
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0024))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0024))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0024));
    specs.push(google);

    // 123-reg: support-ticket channel, no validation.
    let mut reg123 = RegistrarSpec::plain(
        "123-reg",
        "123-reg.co.uk",
        OperatorDnssec::Unsupported,
        ExternalDs::Ticket,
    );
    let [c, n, o] = split_gtld(720_435);
    reg123 = reg123
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(reg123);

    // Rightside (name.com): web upload, no validation.
    let mut rightside = RegistrarSpec::plain(
        "Rightside",
        "name.com",
        OperatorDnssec::Unsupported,
        web(false),
    );
    let [c, n, o] = split_gtld(663_616);
    rightside = rightside
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.0))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.0))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.0));
    specs.push(rightside);

    specs
}

/// The Table-3 DNSSEC-heavy registrars not already in Table 2
/// (OVH and NameCheap appear in both).
pub fn table3_registrars() -> Vec<RegistrarSpec> {
    let web = |validates| ExternalDs::Web { validates };
    let email = |verifies_sender, accepts_foreign_sender, validates| ExternalDs::Email {
        verifies_sender,
        accepts_foreign_sender,
        validates,
    };
    let mut specs = Vec::new();

    // Loopia (SE): signs everything by default, but uploads DS for .se
    // only → its gTLD domains are all partially deployed.
    let mut loopia = RegistrarSpec::plain(
        "Loopia",
        "loopia.se",
        OperatorDnssec::Default,
        email(true, false, false),
    );
    let [c, n, o] = split_gtld(131_726);
    loopia = loopia
        .tld(Tld::Com, via("Ascio"), false, TldLoad::steady(c, 1.0))
        .tld(Tld::Net, via("Ascio"), false, TldLoad::steady(n, 1.0))
        .tld(Tld::Org, via("Ascio"), false, TldLoad::steady(o, 1.0))
        .tld(Tld::Nl, via("Ascio"), false, TldLoad::steady(8_000, 1.0)) // calibrated
        .tld(Tld::Se, r(), true, TldLoad::steady(380_000, 0.92)); // calibrated
    specs.push(loopia);

    // DomainNameShop (NO): full support everywhere it sells.
    let mut dns_shop = RegistrarSpec::plain(
        "DomainNameShop",
        "hyp.net",
        OperatorDnssec::Default,
        web(false),
    );
    let [c, n, o] = split_gtld(94_084);
    dns_shop = dns_shop
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.97))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.97))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.97));
    specs.push(dns_shop);

    // TransIP (NL): registrar for com/net/org/nl (99.2% signed), reseller
    // via KeySystems for .se where DNSSEC lagged (48.4%).
    let mut transip = RegistrarSpec::plain(
        "TransIP",
        "transip.net",
        OperatorDnssec::Default,
        web(false),
    );
    let [c, n, o] = split_gtld(138_110); // transip.net + transip.nl combined
    transip = transip
        .tld(Tld::Com, r(), true, TldLoad::steady(c, 0.992))
        .tld(Tld::Net, r(), true, TldLoad::steady(n, 0.992))
        .tld(Tld::Org, r(), true, TldLoad::steady(o, 0.992))
        .tld(Tld::Nl, r(), true, TldLoad::steady(700_000, 0.992)) // calibrated
        .tld(
            Tld::Se,
            via("KeySystems"),
            true,
            TldLoad::growing(40_000, 0.10, 0.484), // calibrated; renewal-paced
        );
    specs.push(transip);

    // MeshDigital / domainmonster: signs everything, uploads DS for
    // almost nothing (4 of 60,425).
    let mut mesh = RegistrarSpec::plain(
        "MeshDigital",
        "domainmonster.com",
        OperatorDnssec::Default,
        email(false, true, false), // accepted mail from a different address (§6.4)
    );
    let [c, n, o] = split_gtld(60_425);
    mesh = mesh
        .tld(Tld::Com, r(), false, TldLoad::steady(c, 1.0))
        .tld(Tld::Net, r(), false, TldLoad::steady(n, 1.0))
        .tld(Tld::Org, r(), false, TldLoad::steady(o, 1.0))
        .tld(Tld::Nl, r(), false, TldLoad::steady(6_000, 1.0)); // calibrated
    specs.push(mesh);

    // Binero (SE): full support for com/net/org/se; 37.8% gTLD adoption,
    // 92.9% at home.
    let mut binero = RegistrarSpec::plain(
        "Binero",
        "binero.se",
        OperatorDnssec::Default,
        email(false, false, false),
    );
    let [c, n, o] = split_gtld(118_000); // 44,650 signed / 0.378
    binero = binero
        .tld(Tld::Com, r(), true, TldLoad::growing(c, 0.25, 0.378))
        .tld(Tld::Net, r(), true, TldLoad::growing(n, 0.25, 0.378))
        .tld(Tld::Org, r(), true, TldLoad::growing(o, 0.25, 0.378))
        .tld(Tld::Se, r(), true, TldLoad::steady(300_000, 0.929)); // calibrated
    specs.push(binero);

    // KPN (NL): signs everywhere, DS only for .nl (mirror of Loopia).
    let mut kpn = RegistrarSpec::plain(
        "KPN",
        "is.nl",
        OperatorDnssec::Default,
        ExternalDs::Unsupported, // Table 3: no owner-operator support
    );
    let [c, n, o] = split_gtld(15_738);
    kpn = kpn
        .tld(Tld::Com, via("Ascio"), false, TldLoad::steady(c, 1.0))
        .tld(Tld::Net, via("Ascio"), false, TldLoad::steady(n, 1.0))
        .tld(Tld::Org, via("Ascio"), false, TldLoad::steady(o, 1.0))
        .tld(Tld::Nl, r(), true, TldLoad::steady(300_000, 0.95)) // calibrated
        .tld(Tld::Se, via("OpenProvider"), false, TldLoad::steady(3_000, 1.0)); // calibrated
    specs.push(kpn);

    // PCExtreme (NL): the March-2015 mass signing (0.44% → 98.3% in 10
    // days), FetchDnskey DS channel.
    let [c, n, o] = split_gtld(15_226); // 14,967 signed / 0.983
    let pcextreme = RegistrarSpec::plain(
        "PCExtreme",
        "pcextreme.nl",
        OperatorDnssec::Default,
        ExternalDs::FetchDnskey,
    )
    .tld(Tld::Com, via("OpenProvider"), true, TldLoad::steady(c, 0.0044))
    .tld(Tld::Net, via("OpenProvider"), true, TldLoad::steady(n, 0.0044))
    .tld(Tld::Org, via("OpenProvider"), true, TldLoad::steady(o, 0.0044))
    .tld(Tld::Nl, r(), true, TldLoad::steady(120_000, 0.0044)) // calibrated
    .milestone(
        d(2015, 3, 15),
        PolicyChange::MassSignHosted {
            tlds: vec![Tld::Com, Tld::Net, Tld::Org, Tld::Nl],
            over_days: 10,
        },
    );
    specs.push(pcextreme);

    // Antagonist (NL): switched gTLD partner to OpenProvider in Dec 2014;
    // existing domains migrate (and get signed) at renewal → the gradual
    // curve of Figure 6a. Its .nl is already at 95.4%.
    let [c, n, o] = split_gtld(28_100); // 14,806 signed / 0.527 at window end
    let antagonist = RegistrarSpec::plain(
        "Antagonist",
        "webhostingserver.nl",
        OperatorDnssec::Default,
        ExternalDs::Unsupported, // Table 3: no owner-operator support
    )
    // The partner switch predates the window, so the builder starts gTLD
    // domains under the old no-DNSSEC partner with migration pending.
    .tld(Tld::Com, via("OpenProvider"), true, TldLoad::growing(c, 0.05, 0.527))
    .tld(Tld::Net, via("OpenProvider"), true, TldLoad::growing(n, 0.05, 0.527))
    .tld(Tld::Org, via("OpenProvider"), true, TldLoad::growing(o, 0.05, 0.527))
    .tld(Tld::Nl, r(), true, TldLoad::steady(110_000, 0.954)); // calibrated
    specs.push(antagonist);

    specs
}

/// Partner registrars referenced by Table 4 (Ascio, OpenProvider,
/// KeySystems, plus the pre-switch partner "Direct"). They sell little
/// retail themselves but must exist to sponsor reseller registrations.
pub fn partner_registrars() -> Vec<RegistrarSpec> {
    ["Ascio", "OpenProvider", "KeySystems", "Direct"]
        .into_iter()
        .map(|name| {
            let ns: &'static str = match name {
                "Ascio" => "ascio.sim",
                "OpenProvider" => "openprovider.sim",
                "KeySystems" => "keysystems.sim",
                _ => "direct.sim",
            };
            let mut s = RegistrarSpec::plain(
                name,
                ns,
                OperatorDnssec::Unsupported,
                ExternalDs::Web { validates: false },
            );
            for tld in dsec_ecosystem::ALL_TLDS {
                s = s.tld(tld, TldRole::Registrar, true, TldLoad::steady(0, 0.0));
            }
            s
        })
        .collect()
}

/// Footnote-11 parking services: huge operators, zero DNSSEC.
pub fn parking_operators() -> Vec<(&'static str, &'static str, u64)> {
    vec![
        ("Ename", "ename.sim", 1_604_676),
        ("BuyDomains", "buydomains.sim", 1_190_973),
        ("SedoParking", "sedoparking.com", 1_186_838),
        ("DomainNameSales", "domainnamesales.com", 1_081_944),
        ("CashParking", "cashparking.com", 1_012_114),
        ("HugeDomains", "hugedomains.com", 807_607),
        ("ParkingCrew", "parkingcrew.net", 660_081),
        ("RookMedia", "rookmedia.net", 619_254),
        ("ztomy", "ztomy.com", 631_381),
    ]
}

/// §7 third-party DNS operators.
pub struct ThirdPartySpec {
    /// Display name.
    pub name: &'static str,
    /// Nameserver domain.
    pub ns_domain: &'static str,
    /// Hosted .com/.net/.org domains at full scale.
    pub domains: u64,
    /// DNSSEC launch date, if any.
    pub launch: Option<SimDate>,
    /// Fraction of hosted domains with DNSKEY by the window end.
    pub signed_at_end: f64,
    /// Fraction of signing owners who complete the DS relay (§7: ≈60%).
    pub relay_success: f64,
}

/// Cloudflare and DNSPod.
pub fn third_parties() -> Vec<ThirdPartySpec> {
    vec![
        ThirdPartySpec {
            name: "DNSPod",
            ns_domain: "dnspod.net",
            domains: 2_309_215,
            launch: None,
            signed_at_end: 0.0,
            relay_success: 0.0,
        },
        ThirdPartySpec {
            name: "Cloudflare",
            ns_domain: "cloudflare-dns.sim",
            domains: 1_561_687,
            launch: Some(d(2015, 11, 11)),
            signed_at_end: 0.019,
            relay_success: 0.607,
        },
    ]
}

/// Mid-tail European registrars that account for the remaining ≈18% of
/// DNSSEC-signed gTLD domains (calibrated; the paper only names the top
/// 10). Half publish DS correctly, half leave partial deployments, so the
/// partial-deployment CDF (Figure 3) is not over-concentrated.
pub fn midtail_dnssec_registrars() -> Vec<RegistrarSpec> {
    let mut specs = Vec::new();
    for i in 0..10 {
        let publishes = i % 2 == 0;
        let name: &'static str = Box::leak(format!("EuroReg{i:02}").into_boxed_str());
        let ns: &'static str = Box::leak(format!("euroreg{i:02}.sim").into_boxed_str());
        let mut s = RegistrarSpec::plain(
            name,
            ns,
            OperatorDnssec::Default,
            ExternalDs::Web { validates: false },
        );
        let [c, n, o] = split_gtld(19_000);
        s = s
            .tld(Tld::Com, r(), publishes, TldLoad::steady(c, 0.95))
            .tld(Tld::Net, r(), publishes, TldLoad::steady(n, 0.95))
            .tld(Tld::Org, r(), publishes, TldLoad::steady(o, 0.95))
            // calibrated ccTLD long-tail mass so Table 1's .nl/.se
            // percentages land: these registrars carry the remainder.
            .tld(Tld::Nl, r(), true, TldLoad::steady(200_000, 0.85))
            .tld(Tld::Se, r(), true, TldLoad::steady(12_000, 0.0));
        specs.push(s);
    }
    specs
}

/// Remaining unsigned ccTLD mass (hosting-only registrars with no DNSSEC),
/// so the .nl/.se totals reach Table 1's population sizes.
pub fn cctld_fill_registrars() -> Vec<RegistrarSpec> {
    let mut specs = Vec::new();
    for (name, ns, nl, se) in [
        ("NlHostA", "nlhosta.sim", 1_300_000u64, 0u64),
        ("NlHostB", "nlhostb.sim", 950_000, 0),
        ("SeHostA", "sehosta.sim", 0, 350_000),
        ("SeHostB", "sehostb.sim", 0, 150_000),
    ] {
        let mut s = RegistrarSpec::plain(
            name,
            ns,
            OperatorDnssec::Unsupported,
            ExternalDs::Unsupported,
        );
        if nl > 0 {
            s = s.tld(Tld::Nl, r(), false, TldLoad::steady(nl, 0.0));
        }
        if se > 0 {
            s = s.tld(Tld::Se, r(), false, TldLoad::steady(se, 0.0));
        }
        specs.push(s);
    }
    specs
}

/// Full-scale totals per TLD (Table 1), used to size the anonymous long
/// tail after the named profiles are placed.
pub fn table1_totals() -> [(Tld, u64); 5] {
    [
        (Tld::Com, 118_147_199),
        (Tld::Net, 13_773_903),
        (Tld::Org, 9_682_750),
        (Tld::Nl, 5_674_208),
        (Tld::Se, 1_388_372),
    ]
}

/// The user-traffic workload model consumed by the traffic plane
/// (`dsec-traffic`): which TLD a query lands in, how popularity is
/// distributed inside the TLD, which qtype is asked, and whether the
/// query names the apex or the `www` host.
///
/// The paper measures *domains*; this spec re-expresses the same
/// population in *query* space. Values are `// calibrated`: TLD shares
/// follow registration volume skewed further toward .com (resolver-trace
/// studies consistently report gTLD-dominated traffic), and the Zipf
/// exponent sits in the 0.9–1.0 band reported for DNS query popularity.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    /// Zipf exponent `s` for intra-TLD domain popularity (rank-`k`
    /// probability ∝ `1 / k^s`).
    pub zipf_exponent: f64,
    /// Query share per TLD; weights are normalized by the sampler, so
    /// they need not sum to exactly 1.
    pub tld_share: Vec<(Tld, f64)>,
    /// Query share per qtype (normalized like `tld_share`).
    pub qtype_share: Vec<(QtypeMix, f64)>,
    /// Fraction of queries naming `www.<domain>` rather than the apex.
    pub www_share: f64,
}

/// Query types the workload issues. A dedicated enum (rather than a raw
/// rrtype number) keeps the spec independent of the wire crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QtypeMix {
    /// IPv4 address lookups — the bulk of stub traffic.
    A,
    /// IPv6 address lookups.
    Aaaa,
    /// Mail-routing lookups (always at the apex).
    Mx,
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix {
            zipf_exponent: 0.95,                    // calibrated
            tld_share: vec![
                (Tld::Com, 0.72),                   // calibrated
                (Tld::Net, 0.10),
                (Tld::Org, 0.08),
                (Tld::Nl, 0.07),
                (Tld::Se, 0.03),
            ],
            qtype_share: vec![
                (QtypeMix::A, 0.70),                // calibrated
                (QtypeMix::Aaaa, 0.22),
                (QtypeMix::Mx, 0.08),
            ],
            www_share: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_twenty_registrars() {
        assert_eq!(table2_registrars().len(), 20);
    }

    #[test]
    fn table3_plus_overlap_covers_the_paper_list() {
        // OVH and NameCheap live in the Table-2 list; the other eight are
        // here (TransIP merges its two nameserver domains).
        assert_eq!(table3_registrars().len(), 8);
    }

    #[test]
    fn only_three_table2_registrars_sign_hosted_domains() {
        // The paper's headline: GoDaddy (paid), NameCheap (plan-gated),
        // OVH (opt-in).
        let supporting: Vec<&str> = table2_registrars()
            .iter()
            .filter(|s| s.operator_dnssec.supported())
            .map(|s| s.name)
            .collect();
        assert_eq!(supporting, vec!["GoDaddy", "NameCheap", "OVH"]);
    }

    #[test]
    fn eleven_table2_registrars_support_external_ds() {
        let count = table2_registrars()
            .iter()
            .filter(|s| s.external_ds.supported())
            .count();
        assert_eq!(count, 11);
    }

    #[test]
    fn loopia_and_kpn_only_publish_ds_at_home() {
        for spec in table3_registrars() {
            match spec.name {
                "Loopia" => {
                    for (tld, _, publishes, _) in &spec.tlds {
                        assert_eq!(*publishes, *tld == Tld::Se, "Loopia {tld}");
                    }
                }
                "KPN" => {
                    for (tld, _, publishes, _) in &spec.tlds {
                        assert_eq!(*publishes, *tld == Tld::Nl, "KPN {tld}");
                    }
                }
                "MeshDigital" => {
                    assert!(spec.tlds.iter().all(|(_, _, p, _)| !p), "Mesh never uploads");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn market_shares_cover_table2_claim() {
        // Table 2's registrars cover 54.3% of .com/.net/.org; the named
        // specs (incl. parking and third parties as operators) should sum
        // close to that against Table 1 totals.
        let named: u64 = table2_registrars()
            .iter()
            .chain(table3_registrars().iter())
            .flat_map(|s| s.tlds.iter())
            .filter(|(t, ..)| !t.is_cctld())
            .map(|(.., load)| load.domains)
            .sum::<u64>()
            + parking_operators().iter().map(|(_, _, c)| c).sum::<u64>()
            + third_parties().iter().map(|t| t.domains).sum::<u64>();
        let total: u64 = table1_totals()
            .iter()
            .filter(|(t, _)| !t.is_cctld())
            .map(|(_, c)| c)
            .sum();
        let share = named as f64 / total as f64;
        assert!(
            (0.50..0.60).contains(&share),
            "named gTLD share {share:.3} should be ≈0.543"
        );
    }

    #[test]
    fn cctld_signed_fractions_match_table1() {
        // .nl 51.6%, .se 46.7% with DNSKEY. Sum signed/total across specs.
        let mut totals: std::collections::BTreeMap<Tld, (f64, f64)> = Default::default();
        for spec in table2_registrars()
            .into_iter()
            .chain(table3_registrars())
            .chain(midtail_dnssec_registrars())
            .chain(cctld_fill_registrars())
        {
            for (tld, _, _, load) in &spec.tlds {
                let e = totals.entry(*tld).or_default();
                e.0 += load.domains as f64;
                e.1 += load.domains as f64 * load.signed_at_end;
            }
        }
        let nl = totals[&Tld::Nl];
        let se = totals[&Tld::Se];
        let nl_frac = nl.1 / nl.0;
        let se_frac = se.1 / se.0;
        assert!((0.45..0.60).contains(&nl_frac), ".nl signed {nl_frac:.3}");
        assert!((0.40..0.55).contains(&se_frac), ".se signed {se_frac:.3}");
    }

    #[test]
    fn policies_build() {
        for spec in table2_registrars()
            .into_iter()
            .chain(table3_registrars())
            .chain(partner_registrars())
            .chain(midtail_dnssec_registrars())
            .chain(cctld_fill_registrars())
        {
            let policy = spec.policy();
            assert_eq!(policy.tlds.len(), spec.tlds.len(), "{}", spec.name);
        }
    }

    #[test]
    fn traffic_mix_defaults_are_normalized() {
        let mix = TrafficMix::default();
        let tld_total: f64 = mix.tld_share.iter().map(|(_, w)| w).sum();
        let qtype_total: f64 = mix.qtype_share.iter().map(|(_, w)| w).sum();
        assert!((tld_total - 1.0).abs() < 1e-9, "TLD shares sum to {tld_total}");
        assert!((qtype_total - 1.0).abs() < 1e-9, "qtype shares sum to {qtype_total}");
        assert!(mix.zipf_exponent > 0.0);
        assert!((0.0..=1.0).contains(&mix.www_share));
        // Every scanned TLD appears in the mix, .com heaviest.
        assert_eq!(mix.tld_share.len(), 5);
        assert_eq!(mix.tld_share[0].0, Tld::Com);
        for window in mix.tld_share.windows(2) {
            assert!(window[0].1 >= window[1].1, "shares sorted heaviest-first");
        }
    }
}
