//! Builds the paper's world from the calibrated specs at a configurable
//! scale (1:`scale` domains).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsec_ecosystem::{
    Hosting, OperatorId, Plan, RegistrarId, RegistrarPolicy, Tld, TldPolicy, TldRole,
    World, WorldConfig, ALL_TLDS,
};
use dsec_wire::Name;

use crate::spec::{
    cctld_fill_registrars, midtail_dnssec_registrars, parking_operators, partner_registrars,
    table1_totals, table2_registrars, table3_registrars, third_parties, RegistrarSpec,
};

/// Population parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// One simulated domain per `scale` real domains (default 2000).
    pub scale: u64,
    /// How many anonymous long-tail operators to create.
    pub tail_operators: usize,
    /// RNG seed for the builder (independent of the world seed).
    pub seed: u64,
    /// World parameters.
    pub world: WorldConfig,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            scale: 2000,
            tail_operators: 400,
            seed: 0x50F7,
            world: WorldConfig::default(),
        }
    }
}

impl PopulationConfig {
    /// A tiny population for tests: 1:400,000 scale, 20 tail operators.
    pub fn tiny() -> Self {
        PopulationConfig {
            scale: 400_000,
            tail_operators: 20,
            ..Default::default()
        }
    }
}

/// The built world plus handles to the named entities.
pub struct PaperWorld {
    /// The world, positioned at the window start.
    pub world: World,
    /// Named registrar handles.
    pub registrars: BTreeMap<String, RegistrarId>,
    /// Third-party operator handles ("Cloudflare", "DNSPod").
    pub third_parties: BTreeMap<String, OperatorId>,
    /// Parking operator handles.
    pub parking: BTreeMap<String, OperatorId>,
    /// The registrar sponsoring parking / third-party / tail domains.
    pub generic_registrar: RegistrarId,
}

/// Builds the full paper population.
pub fn build(config: &PopulationConfig) -> PaperWorld {
    let mut world = World::new(config.world.clone());
    // The calibration data (signed_at_start) controls the initial state;
    // purchase-time default signing would override it.
    world.auto_sign_on_purchase = false;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let window_days = config
        .world
        .end
        .days_since(config.world.start)
        .max(1);

    let mut registrars = BTreeMap::new();
    let mut placed: BTreeMap<Tld, u64> = BTreeMap::new();

    // Partner registrars first so reseller roles resolve.
    for spec in partner_registrars() {
        let id = world.add_registrar(spec.name, ns(spec.ns_domain), spec.policy());
        registrars.insert(spec.name.to_string(), id);
    }

    // Named profiles.
    let specs: Vec<RegistrarSpec> = table2_registrars()
        .into_iter()
        .chain(table3_registrars())
        .chain(midtail_dnssec_registrars())
        .chain(cctld_fill_registrars())
        .collect();
    for spec in &specs {
        let id = world.add_registrar(spec.name, ns(spec.ns_domain), spec.policy());
        registrars.insert(spec.name.to_string(), id);
        for (on, change) in &spec.milestones {
            world.add_milestone(id, *on, change.clone());
        }
    }

    // Populate each named registrar's domains.
    let mut max_hazard: BTreeMap<RegistrarId, f64> = BTreeMap::new();
    for spec in &specs {
        let id = registrars[spec.name];
        for (tld, _, _, load) in &spec.tlds {
            let count = scaled_count(&mut rng, load.domains, config.scale);
            let signed = (count as f64 * load.signed_at_start).round() as usize;
            for i in 0..count {
                let label = format!("{}-{}-{i}", slug(spec.name), tld.label());
                let plan = if rng.random::<f64>() < spec.premium_share {
                    Plan::Premium
                } else {
                    Plan::Free
                };
                let Ok(domain) = world.purchase(
                    id,
                    &label,
                    *tld,
                    Hosting::Registrar { plan },
                    format!("owner@{label}.example"),
                ) else {
                    continue;
                };
                // Stagger renewals across the first year.
                let offset = rng.random_range(1..365u32);
                world.set_expiry(&domain, config.world.start.plus_days(offset));
                if i < signed {
                    let _ = world.sign_hosted(&domain);
                }
            }
            *placed.entry(*tld).or_default() += load.domains;
            // Adoption hazard from start → end fractions.
            if load.signed_at_end > load.signed_at_start && load.signed_at_start < 1.0 {
                let ratio = (1.0 - load.signed_at_end) / (1.0 - load.signed_at_start);
                let hazard = 1.0 - ratio.powf(1.0 / window_days as f64);
                let e = max_hazard.entry(id).or_default();
                *e = e.max(hazard);
            }
        }
    }
    for (id, hazard) in max_hazard {
        world.set_optin_hazard(id, hazard);
    }

    // Generic retail registrar for parking / third-party / tail domains.
    let generic = world.add_registrar(
        "GenericRetail",
        ns("genericretail.sim"),
        RegistrarPolicy {
            operator_dnssec: dsec_ecosystem::OperatorDnssec::Unsupported,
            external_ds: dsec_ecosystem::ExternalDs::Web { validates: false },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    registrars.insert("GenericRetail".into(), generic);

    // Parking operators (gTLD only).
    let mut parking = BTreeMap::new();
    for (name_, ns_domain, count) in parking_operators() {
        let op = world.add_operator(name_, ns(ns_domain), 2);
        parking.insert(name_.to_string(), op);
        let [c, n_, o] = split3(count);
        for (tld, cnt) in [(Tld::Com, c), (Tld::Net, n_), (Tld::Org, o)] {
            for i in 0..scaled_count(&mut rng, cnt, config.scale) {
                let label = format!("{}-{}-{i}", slug(name_), tld.label());
                let _ = world.purchase(
                    generic,
                    &label,
                    tld,
                    Hosting::ThirdParty { operator: op },
                    format!("owner@{label}.example"),
                );
            }
        }
        *placed.entry(Tld::Com).or_default() += c;
        *placed.entry(Tld::Net).or_default() += n_;
        *placed.entry(Tld::Org).or_default() += o;
    }

    // Third parties (Cloudflare / DNSPod).
    let mut tps = BTreeMap::new();
    for tp in third_parties() {
        let hazard = match tp.launch {
            Some(launch) if tp.signed_at_end > 0.0 => {
                let days = config.world.end.days_since(launch).max(1);
                1.0 - (1.0 - tp.signed_at_end).powf(1.0 / days as f64)
            }
            _ => 0.0,
        };
        let op = world.add_third_party(
            tp.name,
            ns(tp.ns_domain),
            tp.launch,
            hazard,
            tp.relay_success,
        );
        tps.insert(tp.name.to_string(), op);
        let [c, n_, o] = split3(tp.domains);
        for (tld, cnt) in [(Tld::Com, c), (Tld::Net, n_), (Tld::Org, o)] {
            for i in 0..scaled_count(&mut rng, cnt, config.scale) {
                let label = format!("{}-{}-{i}", slug(tp.name), tld.label());
                let _ = world.purchase(
                    generic,
                    &label,
                    tld,
                    Hosting::ThirdParty { operator: op },
                    format!("owner@{label}.example"),
                );
            }
        }
        *placed.entry(Tld::Com).or_default() += c;
        *placed.entry(Tld::Net).or_default() += n_;
        *placed.entry(Tld::Org).or_default() += o;
    }

    // Anonymous long tail: fill each TLD to its Table-1 total with
    // Zipf-sized no-DNSSEC operators.
    if config.tail_operators > 0 {
        let weights: Vec<f64> = (1..=config.tail_operators)
            .map(|r| 1.0 / (r as f64 + 25.0))
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        // Pre-create tail registrars/operators.
        let tail_ids: Vec<RegistrarId> = (0..config.tail_operators)
            .map(|i| {
                world.add_registrar(
                    format!("TailHost{i:04}"),
                    ns(&format!("tailhost{i:04}.sim")),
                    RegistrarPolicy::no_dnssec(&ALL_TLDS),
                )
            })
            .collect();
        for (tld, total) in table1_totals() {
            let remaining = (total.saturating_sub(placed.get(&tld).copied().unwrap_or(0))
                / config.scale) as usize;
            for (i, &id) in tail_ids.iter().enumerate() {
                let share =
                    ((remaining as f64) * weights[i] / weight_sum).round() as usize;
                for k in 0..share {
                    let label = format!("tail{i:04}-{}-{k}", tld.label());
                    let _ = world.purchase(
                        id,
                        &label,
                        tld,
                        Hosting::Registrar { plan: Plan::Free },
                        format!("owner@{label}.example"),
                    );
                }
            }
        }
    }

    world.auto_sign_on_purchase = true;
    PaperWorld {
        world,
        registrars,
        third_parties: tps,
        parking,
        generic_registrar: generic,
    }
}

/// Scales a full-population count down with probabilistic rounding so
/// mid-size masses survive tiny test scales in expectation.
fn scaled_count(rng: &mut StdRng, domains: u64, scale: u64) -> usize {
    let exact = domains as f64 / scale as f64;
    let floor = exact.floor();
    let extra = if rng.random::<f64>() < exact - floor { 1 } else { 0 };
    floor as usize + extra
}

fn ns(s: &str) -> Name {
    Name::parse(s).expect("static nameserver domain parses")
}

fn slug(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

fn split3(total: u64) -> [u64; 3] {
    [
        total * 77 / 100,
        total * 13 / 100,
        total - total * 77 / 100 - total * 13 / 100,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_dnssec::{classify, DeploymentStatus};

    fn tiny() -> PaperWorld {
        build(&PopulationConfig::tiny())
    }

    #[test]
    fn named_registrars_exist() {
        let pw = tiny();
        for name in [
            "GoDaddy",
            "OVH",
            "NameCheap",
            "Loopia",
            "TransIP",
            "PCExtreme",
            "Antagonist",
            "Ascio",
            "OpenProvider",
        ] {
            assert!(pw.registrars.contains_key(name), "{name} missing");
            assert!(pw.world.registrar_by_name(name).is_some());
        }
        assert!(pw.third_parties.contains_key("Cloudflare"));
        assert!(pw.parking.contains_key("SedoParking"));
    }

    #[test]
    fn tiny_population_has_reasonable_size() {
        let pw = tiny();
        // 148.6M domains / 400k ≈ 370, minus rounding.
        let n = pw.world.domain_count();
        assert!((150..700).contains(&n), "population {n}");
    }

    #[test]
    fn all_domains_are_delegated_in_their_registry() {
        let pw = tiny();
        for tld in ALL_TLDS {
            let delegations = pw.world.registry(tld).delegations().len();
            let owned = pw.world.domains().filter(|d| d.tld == tld).count();
            assert_eq!(delegations, owned, "{tld}");
        }
    }

    #[test]
    fn signed_fractions_are_nontrivial_in_cctlds() {
        let pw = tiny();
        let nl_total = pw.world.domains().filter(|d| d.tld == Tld::Nl).count();
        let nl_signed = pw
            .world
            .domains()
            .filter(|d| d.tld == Tld::Nl && d.is_signed())
            .count();
        assert!(nl_total > 0);
        let frac = nl_signed as f64 / nl_total as f64;
        assert!(
            (0.30..0.75).contains(&frac),
            ".nl signed fraction {frac:.2} at tiny scale"
        );
    }

    #[test]
    fn gtld_signing_is_rare() {
        let pw = tiny();
        let com_total = pw.world.domains().filter(|d| d.tld == Tld::Com).count();
        let com_signed = pw
            .world
            .domains()
            .filter(|d| d.tld == Tld::Com && d.is_signed())
            .count();
        let frac = com_signed as f64 / com_total.max(1) as f64;
        assert!(frac < 0.10, ".com signed fraction {frac:.3} should be ≈0.007");
    }

    #[test]
    fn signed_domains_actually_validate_or_are_partial() {
        // A somewhat larger scale so mid-size partial-deployment
        // registrars (Loopia/Mesh/KPN gTLD) materialize.
        let pw = build(&PopulationConfig {
            scale: 60_000,
            tail_operators: 0,
            ..Default::default()
        });
        let now = pw.world.today.epoch_seconds();
        let mut full = 0;
        let mut partial = 0;
        for d in pw.world.domains().filter(|d| d.is_signed()) {
            let obs = pw.world.observation_of(&d.name);
            match classify(&d.name, &obs, now) {
                DeploymentStatus::FullyDeployed => full += 1,
                DeploymentStatus::PartiallyDeployed => partial += 1,
                other => panic!("{}: unexpected {other:?}", d.name),
            }
        }
        assert!(full > 0, "some domains fully deployed");
        assert!(partial > 0, "some domains partially deployed (Loopia/Mesh/KPN)");
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.world.domain_count(), b.world.domain_count());
        let da: Vec<String> = a.world.domains().map(|d| d.name.to_string()).collect();
        let db: Vec<String> = b.world.domains().map(|d| d.name.to_string()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn parking_and_third_party_domains_are_hosted_off_registrar() {
        let pw = tiny();
        let off = pw
            .world
            .domains()
            .filter(|d| matches!(d.hosting, Hosting::ThirdParty { .. }))
            .count();
        assert!(off > 0, "parking/third-party domains exist");
    }
}
