//! Registrars and resellers: profile data plus dated policy milestones.

use crate::clock::SimDate;
use crate::operator::OperatorId;
use crate::policy::{ExternalDs, OperatorDnssec, RegistrarPolicy};
use crate::tld::Tld;
use crate::RegistrarId;

/// One registrar (or reseller) profile.
pub struct Registrar {
    /// Registrar id.
    pub id: RegistrarId,
    /// Display name ("GoDaddy").
    pub name: String,
    /// Current policy (changes via milestones).
    pub policy: RegistrarPolicy,
    /// The operator running this registrar's hosting nameservers.
    pub operator: OperatorId,
    /// Dated policy changes, applied by the daily tick.
    pub milestones: Vec<Milestone>,
    /// For opt-in/paid policies: the per-day probability that an unsigned
    /// registrar-hosted domain's owner enables DNSSEC. Calibrated by the
    /// workloads crate to reproduce the paper's adoption curves.
    pub daily_optin_hazard: f64,
}

/// A dated policy change.
#[derive(Debug, Clone)]
pub struct Milestone {
    /// The day it takes effect.
    pub on: SimDate,
    /// What changes.
    pub change: PolicyChange,
}

/// The kinds of policy change the longitudinal study observed.
#[derive(Debug, Clone)]
pub enum PolicyChange {
    /// Change the registrar-as-operator DNSSEC policy.
    SetOperatorDnssec(OperatorDnssec),
    /// Change the external DS channel.
    SetExternalDs(ExternalDs),
    /// Start (or stop) uploading DS records for one TLD.
    SetPublishesDs(Tld, bool),
    /// Switch the reseller partner for one TLD; existing domains migrate
    /// at their next renewal (§6.3, Antagonist).
    SwitchPartner {
        /// Which TLD.
        tld: Tld,
        /// New partner registrar, by name.
        new_partner: String,
        /// Whether existing registrations move only at renewal.
        migrate_at_renewal: bool,
    },
    /// Sign every hosted domain in the given TLDs, spread over `over_days`
    /// (§6.3, PCExtreme's 10-day jump from 0.44% to 98.3%).
    MassSignHosted {
        /// Which TLDs.
        tlds: Vec<Tld>,
        /// Days to spread the signing over (≥ 1).
        over_days: u32,
    },
    /// Change the opt-in hazard (adoption speeds up or stalls).
    SetOptInHazard(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RegistrarPolicy;

    #[test]
    fn registrar_carries_profile() {
        let r = Registrar {
            id: RegistrarId(3),
            name: "GoDaddy".into(),
            policy: RegistrarPolicy::no_dnssec(&[Tld::Com]),
            operator: OperatorId(1),
            milestones: vec![Milestone {
                on: SimDate(100),
                change: PolicyChange::SetOptInHazard(0.001),
            }],
            daily_optin_hazard: 0.0,
        };
        assert_eq!(r.name, "GoDaddy");
        assert_eq!(r.milestones.len(), 1);
    }
}
