//! TLD registries: the organizations that own the TLD zone file.
//!
//! A registry serves its (signed) TLD zone, accepts delegation and DS
//! updates **only from accredited registrars** (the paper's key structural
//! constraint), runs the daily DNSSEC compliance audits behind the .nl/.se
//! discount programmes, and — when configured like `.cz` — scans child
//! zones for CDS/CDNSKEY records.
//!
//! For scalability the TLD zone is signed *incrementally*: the apex RRsets
//! once, and each delegation's DS RRset individually whenever a registrar
//! updates it. (A full NSEC chain over a hundred-thousand-delegation zone
//! would be re-signed wholesale otherwise; see DESIGN.md.)

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::RngCore;

use dsec_authserver::Authority;
use dsec_crypto::Algorithm;
use dsec_dnssec::{sign_rrset, SignerConfig, ZoneKeys};
use dsec_wire::{DsRdata, Name, NameInterner, RData, Record, RrSet, RrType, SoaRdata, Zone};

use crate::table::{DomainTable, OrderedRows};
use crate::tld::Tld;
use crate::RegistrarId;

/// TTLs used in registry zones.
const DELEGATION_TTL: u32 = 172_800;
const DS_TTL: u32 = 86_400;
const APEX_TTL: u32 = 3_600;

/// One TLD registry.
pub struct Registry {
    /// Which TLD this registry operates.
    pub tld: Tld,
    /// The registry's zone-signing keys.
    keys: ZoneKeys,
    /// The authority serving the TLD zone.
    authority: Arc<Authority>,
    /// Registrars allowed to touch the registry.
    accredited: Vec<RegistrarId>,
    /// Whether the registry scans children for CDS/CDNSKEY (RFC 7344/8078);
    /// in the paper's time frame only `.cz` had announced this.
    pub supports_cds: bool,
    /// RFC 8078 §3 "accept after delay" bootstrapping: when set, a child
    /// with **no** current DS whose CDS has been stably published (and
    /// self-consistently signed) for this many days gets its DS installed
    /// — the mechanism that heals partial deployments without any
    /// registrar interaction.
    pub cds_bootstrap_delay_days: Option<u32>,
    /// Signer parameters for DS RRset signatures.
    signer: SignerConfig,
    /// Incentive bookkeeping: cents awarded per registrar.
    pub discounts_cents: BTreeMap<RegistrarId, u64>,
    /// Incentive bookkeeping: validation failures per registrar.
    pub audit_failures: BTreeMap<RegistrarId, u64>,
    /// Columnar per-delegation state: sponsor, change generation, and
    /// liveness in dense `NameId`-indexed columns (see [`DomainTable`]).
    /// The generation column is bumped on every registry-side edit a
    /// scanner could observe (delegation added/removed, NS set replaced,
    /// DS set replaced); the incremental scan cache keys its entries on
    /// it so an unchanged domain is never re-queried.
    table: DomainTable,
    /// Bumped whenever the *set* of delegations changes (add/remove, not
    /// edits). The scan cache skips its departed-domain prune — a full
    /// rehash of the population — on days this hasn't moved.
    population_epoch: u64,
}

impl Registry {
    /// Creates the registry: generates keys, builds and signs the apex of
    /// the TLD zone, and registers its nameserver on `authority`.
    ///
    /// `valid_until` is the epoch-seconds expiration used for every
    /// signature the registry makes (set it past the simulation end).
    pub fn new(
        tld: Tld,
        rng: &mut dyn RngCore,
        valid_from: u32,
        valid_until: u32,
    ) -> Self {
        Self::with_interner(tld, rng, valid_from, valid_until, Arc::new(NameInterner::new()))
    }

    /// [`Registry::new`] interning delegation names into a shared
    /// interner (the world passes one interner to all its registries so
    /// `NameId`s are comparable across the ecosystem).
    pub fn with_interner(
        tld: Tld,
        rng: &mut dyn RngCore,
        valid_from: u32,
        valid_until: u32,
        interner: Arc<NameInterner>,
    ) -> Self {
        let origin = tld.zone();
        let keys = ZoneKeys::generate_default(rng, origin.clone(), Algorithm::RsaSha256)
            .expect("RSA-SHA256 is supported");
        let signer = SignerConfig {
            inception: valid_from,
            expiration: valid_until,
            nsec: false,
            nsec3: None,
            dnskey_ttl: APEX_TTL,
        };

        let mut zone = Zone::new(origin.clone());
        zone.add(Record::new(
            origin.clone(),
            APEX_TTL,
            RData::Soa(SoaRdata {
                mname: tld.registry_ns(),
                rname: Name::parse(&format!("hostmaster.{}", tld.label())).unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        ))
        .expect("apex SOA in zone");
        zone.add(Record::new(
            origin.clone(),
            APEX_TTL,
            RData::Ns(tld.registry_ns()),
        ))
        .expect("apex NS in zone");
        for record in keys.dnskey_records(APEX_TTL) {
            zone.add(record).expect("DNSKEYs in zone");
        }
        // Sign the three apex RRsets.
        for rtype in [RrType::Soa, RrType::Ns, RrType::Dnskey] {
            let rrset = zone.rrset(&origin, rtype).expect("apex RRset exists");
            let sig = if rtype == RrType::Dnskey {
                sign_rrset(&rrset, &keys.ksk, keys.ksk_tag(), &origin, &signer)
            } else {
                sign_rrset(&rrset, &keys.zsk, keys.zsk_tag(), &origin, &signer)
            };
            zone.add(sig).expect("apex RRSIG in zone");
        }

        let authority = Arc::new(Authority::new());
        authority.upsert_zone(zone);

        Registry {
            tld,
            keys,
            authority,
            accredited: Vec::new(),
            supports_cds: false,
            cds_bootstrap_delay_days: None,
            signer,
            discounts_cents: BTreeMap::new(),
            audit_failures: BTreeMap::new(),
            table: DomainTable::new(interner),
            population_epoch: 0,
        }
    }

    /// The change generation of `domain` (0 = never seen). Any edit that
    /// changes what a scan of the TLD zone would observe bumps this;
    /// sponsorship transfers do not (they are invisible on the wire).
    pub fn generation_of(&self, domain: &Name) -> u64 {
        // `Name` hashes case-insensitively, so the interner lookup needs
        // no canonical copy; the rest is two integer probes.
        self.table.generation_of(domain)
    }

    fn bump_generation(&mut self, domain: &Name) {
        let row = self.table.intern_row(domain);
        self.table.bump(row);
    }

    /// Folds a zone-side edit (signing, hosting change — anything the
    /// [`World`](crate::World) observes outside the registry) into the
    /// same per-delegation counter, so [`Registry::generation_of`] is the
    /// single map probe on the scan hot path.
    pub(crate) fn note_external_change(&mut self, domain: &Name) {
        self.bump_generation(domain);
    }

    /// The authority serving this TLD zone (register it on the network
    /// under [`Tld::registry_ns`]).
    pub fn authority(&self) -> Arc<Authority> {
        self.authority.clone()
    }

    /// The registry's own keys (the parent hands its DS up to the root).
    pub fn keys(&self) -> &ZoneKeys {
        &self.keys
    }

    /// Accredits a registrar (ICANN accreditation + registry certification).
    pub fn accredit(&mut self, registrar: RegistrarId) {
        if !self.accredited.contains(&registrar) {
            self.accredited.push(registrar);
        }
    }

    /// Whether `registrar` may update this registry.
    pub fn is_accredited(&self, registrar: RegistrarId) -> bool {
        self.accredited.contains(&registrar)
    }

    /// Registers a new delegation. Only accredited registrars may do this.
    pub fn add_delegation(
        &mut self,
        registrar: RegistrarId,
        domain: &Name,
        ns_hosts: &[Name],
    ) -> Result<(), RegistryError> {
        self.check(registrar, domain)?;
        if self.authority
            .with_zone(&self.tld.zone(), |z| z.rrset(domain, RrType::Ns).is_some())
            .unwrap_or(false)
        {
            return Err(RegistryError::AlreadyRegistered(domain.to_string()));
        }
        self.authority.with_zone_mut(&self.tld.zone(), |zone| {
            for ns in ns_hosts {
                zone.add(Record::new(
                    domain.clone(),
                    DELEGATION_TTL,
                    RData::Ns(ns.clone()),
                ))
                .expect("delegation in zone");
            }
        });
        let row = self.table.intern_row(domain);
        self.table.set_live(row, registrar);
        self.table.bump(row);
        self.population_epoch += 1;
        Ok(())
    }

    /// Replaces the NS set of an existing delegation (hosting change).
    pub fn set_ns(
        &mut self,
        registrar: RegistrarId,
        domain: &Name,
        ns_hosts: &[Name],
    ) -> Result<(), RegistryError> {
        self.check_sponsor(registrar, domain)?;
        self.authority.with_zone_mut(&self.tld.zone(), |zone| {
            zone.remove_rrset(domain, RrType::Ns);
            for ns in ns_hosts {
                zone.add(Record::new(
                    domain.clone(),
                    DELEGATION_TTL,
                    RData::Ns(ns.clone()),
                ))
                .expect("delegation in zone");
            }
        });
        self.bump_generation(domain);
        Ok(())
    }

    /// Installs (replacing) the DS RRset for a delegation and signs it.
    /// **The registry performs no validation of the DS contents** — exactly
    /// like real registries, it publishes whatever the registrar sends.
    pub fn set_ds(
        &mut self,
        registrar: RegistrarId,
        domain: &Name,
        ds_set: &[DsRdata],
    ) -> Result<(), RegistryError> {
        self.check_sponsor(registrar, domain)?;
        let keys = &self.keys;
        let signer = &self.signer;
        self.authority.with_zone_mut(&self.tld.zone(), |zone| {
            zone.remove_rrset(domain, RrType::Ds);
            remove_rrsig_covering(zone, domain, RrType::Ds);
            if ds_set.is_empty() {
                return;
            }
            for ds in ds_set {
                zone.add(Record::new(domain.clone(), DS_TTL, RData::Ds(ds.clone())))
                    .expect("DS in zone");
            }
            let rrset = zone.rrset(domain, RrType::Ds).expect("just added");
            let sig = sign_rrset(&rrset, &keys.zsk, keys.zsk_tag(), &keys.zone, signer);
            zone.add(sig).expect("DS RRSIG in zone");
        });
        self.bump_generation(domain);
        Ok(())
    }

    /// Removes the DS RRset (and its signature).
    pub fn remove_ds(&mut self, registrar: RegistrarId, domain: &Name) -> Result<(), RegistryError> {
        self.set_ds(registrar, domain, &[])
    }

    /// Drops a delegation entirely.
    pub fn remove_delegation(
        &mut self,
        registrar: RegistrarId,
        domain: &Name,
    ) -> Result<(), RegistryError> {
        self.check_sponsor(registrar, domain)?;
        self.authority.with_zone_mut(&self.tld.zone(), |zone| {
            zone.remove_name(domain);
        });
        let row = self.table.intern_row(domain);
        self.table.set_dead(row);
        self.population_epoch += 1;
        // Keep (and bump) the generation column: if the name is later
        // re-registered its generation must not restart from a value a
        // stale cache entry could collide with.
        self.table.bump(row);
        Ok(())
    }

    /// Transfers sponsorship of a delegation to another accredited
    /// registrar (reseller partner migration at renewal).
    pub fn transfer(
        &mut self,
        from: RegistrarId,
        to: RegistrarId,
        domain: &Name,
    ) -> Result<(), RegistryError> {
        self.check_sponsor(from, domain)?;
        if !self.is_accredited(to) {
            return Err(RegistryError::NotAccredited(to));
        }
        let row = self.table.intern_row(domain);
        self.table.set_sponsor(row, to);
        Ok(())
    }

    /// The DS records currently published for `domain`.
    pub fn ds_of(&self, domain: &Name) -> Vec<DsRdata> {
        self.authority
            .with_zone(&self.tld.zone(), |zone| {
                zone.rrset(domain, RrType::Ds)
                    .map(|set| {
                        set.records()
                            .iter()
                            .filter_map(|r| match &r.rdata {
                                RData::Ds(ds) => Some(ds.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }

    /// The NS hostnames currently delegated for `domain`.
    pub fn ns_of(&self, domain: &Name) -> Vec<Name> {
        self.authority
            .with_zone(&self.tld.zone(), |zone| {
                zone.rrset(domain, RrType::Ns)
                    .map(|set| {
                        set.records()
                            .iter()
                            .filter_map(|r| match &r.rdata {
                                RData::Ns(h) => Some(h.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }

    /// Every delegated second-level domain (the "zone file" the scanner
    /// enumerates, as OpenINTEL does). Served from the sponsorship table,
    /// which mirrors the zone's delegation set by construction — every
    /// add/remove goes through the registry (the paper's structural
    /// constraint), so no zone lock or record filtering is needed.
    pub fn delegations(&self) -> Vec<Name> {
        self.delegation_names().cloned().collect()
    }

    /// Borrowing form of [`Registry::delegations`]: the scan hot path
    /// enumerates millions of names per snapshot and must not clone
    /// them. Names come out in canonical (RFC 4034) order, same as the
    /// zone file.
    pub fn delegation_names(&self) -> impl Iterator<Item = &Name> {
        self.table.ordered_names()
    }

    /// The columnar scan edge: live delegations in canonical order as
    /// `(row, &name, generation)`. The row is a stable per-registry
    /// handle (it survives nothing — dead rows are skipped, but a
    /// re-registered name keeps its row), so incremental consumers can
    /// key caches on `(tld, row)` instead of the name, and the
    /// generation comes out of the same column sweep instead of a
    /// per-domain map probe.
    pub fn delegations_columnar(&self) -> OrderedRows<'_> {
        self.table.ordered()
    }

    /// A counter that moves exactly when the delegation *set* does
    /// (registration or removal; edits to existing delegations do not
    /// count). Lets incremental consumers detect that no domain can have
    /// departed since they last looked.
    pub fn population_epoch(&self) -> u64 {
        self.population_epoch
    }

    /// The sponsoring registrar of `domain`.
    pub fn sponsor_of(&self, domain: &Name) -> Option<RegistrarId> {
        self.table.row_of(domain).and_then(|row| self.table.sponsor(row))
    }

    /// Records an audit outcome for incentive bookkeeping: a correctly
    /// signed domain earns its sponsor the per-domain discount, a broken
    /// one counts as a failure.
    pub fn record_audit(&mut self, domain: &Name, passed: bool) {
        let Some(sponsor) = self.sponsor_of(domain) else {
            return;
        };
        if passed {
            if let Some(incentive) = self.tld.incentive() {
                // Daily accrual of the yearly discount.
                *self.discounts_cents.entry(sponsor).or_default() +=
                    (incentive.discount_cents as u64).max(1) / 365 + 1;
            }
        } else {
            *self.audit_failures.entry(sponsor).or_default() += 1;
        }
    }

    fn check(&self, registrar: RegistrarId, _domain: &Name) -> Result<(), RegistryError> {
        if !self.is_accredited(registrar) {
            return Err(RegistryError::NotAccredited(registrar));
        }
        Ok(())
    }

    fn check_sponsor(&self, registrar: RegistrarId, domain: &Name) -> Result<(), RegistryError> {
        self.check(registrar, domain)?;
        match self.sponsor_of(domain) {
            Some(s) if s == registrar => Ok(()),
            Some(_) => Err(RegistryError::NotSponsor {
                registrar,
                domain: domain.to_string(),
            }),
            None => Err(RegistryError::NotRegistered(domain.to_string())),
        }
    }
}

/// Removes RRSIG records at `owner` covering `rtype`, leaving others.
fn remove_rrsig_covering(zone: &mut Zone, owner: &Name, rtype: RrType) {
    if let Some(set) = zone.rrset(owner, RrType::Rrsig) {
        let keep: Vec<Record> = set
            .records()
            .iter()
            .filter(|r| !matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == rtype))
            .cloned()
            .collect();
        zone.remove_rrset(owner, RrType::Rrsig);
        for record in keep {
            zone.add(record).expect("kept RRSIG still in zone");
        }
    }
}

/// Validates the DS RRset signature of `domain` inside the registry zone
/// (used by tests and the audit path).
pub fn ds_rrset_of(registry: &Registry, domain: &Name) -> Option<RrSet> {
    registry.authority.with_zone(&registry.tld.zone(), |zone| {
        zone.rrset(domain, RrType::Ds)
    })?
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The caller is not accredited at this registry.
    NotAccredited(RegistrarId),
    /// The caller does not sponsor this delegation.
    NotSponsor {
        /// Who tried.
        registrar: RegistrarId,
        /// Which domain.
        domain: String,
    },
    /// The domain is not delegated here.
    NotRegistered(String),
    /// The domain is already delegated.
    AlreadyRegistered(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotAccredited(r) => write!(f, "registrar #{} is not accredited", r.0),
            RegistryError::NotSponsor { registrar, domain } => {
                write!(f, "registrar #{} does not sponsor {domain}", registrar.0)
            }
            RegistryError::NotRegistered(d) => write!(f, "{d} is not registered"),
            RegistryError::AlreadyRegistered(d) => write!(f, "{d} is already registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FROM: u32 = 1_420_070_400;
    const UNTIL: u32 = FROM + 1000 * 86_400;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn registry() -> Registry {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Registry::new(Tld::Com, &mut rng, FROM, UNTIL);
        r.accredit(RegistrarId(1));
        r
    }

    #[test]
    fn apex_is_signed() {
        let r = registry();
        let auth = r.authority();
        let q = dsec_wire::Message::query(1, name("com"), RrType::Dnskey, true);
        let resp = auth.handle_query(&q);
        assert_eq!(
            resp.answers
                .iter()
                .filter(|rec| rec.rtype() == RrType::Dnskey)
                .count(),
            2
        );
        assert!(resp.answers.iter().any(|rec| rec.rtype() == RrType::Rrsig));
    }

    #[test]
    fn only_accredited_registrars_may_register() {
        let mut r = registry();
        let err = r.add_delegation(RegistrarId(9), &name("x.com"), &[name("ns1.op.net")]);
        assert_eq!(err, Err(RegistryError::NotAccredited(RegistrarId(9))));
        assert!(r
            .add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .is_ok());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = registry();
        r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        assert!(matches!(
            r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")]),
            Err(RegistryError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn ds_lifecycle_with_signature() {
        let mut r = registry();
        let reg = RegistrarId(1);
        r.add_delegation(reg, &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        assert!(r.ds_of(&name("x.com")).is_empty());
        let ds = DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: vec![7; 32],
        };
        r.set_ds(reg, &name("x.com"), std::slice::from_ref(&ds)).unwrap();
        assert_eq!(r.ds_of(&name("x.com")), vec![ds]);
        // The DS RRset is signed by the registry.
        let has_ds_sig = r
            .authority()
            .with_zone(&name("com"), |z| {
                z.rrset(&name("x.com"), RrType::Rrsig)
                    .map(|s| {
                        s.records().iter().any(|rec| {
                            matches!(&rec.rdata, RData::Rrsig(sig) if sig.type_covered == RrType::Ds)
                        })
                    })
                    .unwrap_or(false)
            })
            .unwrap();
        assert!(has_ds_sig);
        r.remove_ds(reg, &name("x.com")).unwrap();
        assert!(r.ds_of(&name("x.com")).is_empty());
    }

    #[test]
    fn registry_publishes_garbage_ds_verbatim() {
        // Real registries do not validate DS contents; neither does ours.
        let mut r = registry();
        let reg = RegistrarId(1);
        r.add_delegation(reg, &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        let garbage = DsRdata {
            key_tag: 0,
            algorithm: 99,
            digest_type: 99,
            digest: b"not a digest".to_vec(),
        };
        r.set_ds(reg, &name("x.com"), std::slice::from_ref(&garbage)).unwrap();
        assert_eq!(r.ds_of(&name("x.com")), vec![garbage]);
    }

    #[test]
    fn sponsorship_is_enforced() {
        let mut r = registry();
        r.accredit(RegistrarId(2));
        r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        let ds = DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: vec![1; 32],
        };
        assert!(matches!(
            r.set_ds(RegistrarId(2), &name("x.com"), &[ds]),
            Err(RegistryError::NotSponsor { .. })
        ));
        assert!(matches!(
            r.set_ns(RegistrarId(2), &name("x.com"), &[name("ns2.op.net")]),
            Err(RegistryError::NotSponsor { .. })
        ));
    }

    #[test]
    fn transfer_changes_sponsor() {
        let mut r = registry();
        r.accredit(RegistrarId(2));
        r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        r.transfer(RegistrarId(1), RegistrarId(2), &name("x.com"))
            .unwrap();
        assert_eq!(r.sponsor_of(&name("x.com")), Some(RegistrarId(2)));
        // New sponsor can now update.
        assert!(r
            .set_ns(RegistrarId(2), &name("x.com"), &[name("ns9.op.net")])
            .is_ok());
        assert_eq!(r.ns_of(&name("x.com")), vec![name("ns9.op.net")]);
    }

    #[test]
    fn transfer_requires_accredited_recipient() {
        let mut r = registry();
        r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        assert_eq!(
            r.transfer(RegistrarId(1), RegistrarId(5), &name("x.com")),
            Err(RegistryError::NotAccredited(RegistrarId(5)))
        );
    }

    #[test]
    fn delegations_enumerates_slds_only() {
        let mut r = registry();
        r.add_delegation(RegistrarId(1), &name("a.com"), &[name("ns1.op.net")])
            .unwrap();
        r.add_delegation(RegistrarId(1), &name("b.com"), &[name("ns1.op.net")])
            .unwrap();
        let mut d = r.delegations();
        d.sort();
        assert_eq!(d, vec![name("a.com"), name("b.com")]);
    }

    #[test]
    fn removal_cleans_up() {
        let mut r = registry();
        r.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        r.remove_delegation(RegistrarId(1), &name("x.com")).unwrap();
        assert!(r.delegations().is_empty());
        assert_eq!(r.sponsor_of(&name("x.com")), None);
    }

    #[test]
    fn generation_bumps_on_observable_edits_only() {
        let mut r = registry();
        r.accredit(RegistrarId(2));
        let d = name("x.com");
        assert_eq!(r.generation_of(&d), 0, "unknown names are generation 0");
        r.add_delegation(RegistrarId(1), &d, &[name("ns1.op.net")])
            .unwrap();
        assert_eq!(r.generation_of(&d), 1);
        r.set_ns(RegistrarId(1), &d, &[name("ns2.op.net")]).unwrap();
        assert_eq!(r.generation_of(&d), 2);
        let ds = DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: vec![7; 32],
        };
        r.set_ds(RegistrarId(1), &d, std::slice::from_ref(&ds)).unwrap();
        assert_eq!(r.generation_of(&d), 3);
        r.remove_ds(RegistrarId(1), &d).unwrap();
        assert_eq!(r.generation_of(&d), 4);
        // Transfers are invisible on the wire: no bump.
        r.transfer(RegistrarId(1), RegistrarId(2), &d).unwrap();
        assert_eq!(r.generation_of(&d), 4);
        // Removal bumps and the counter survives re-registration.
        r.remove_delegation(RegistrarId(2), &d).unwrap();
        assert_eq!(r.generation_of(&d), 5);
        r.add_delegation(RegistrarId(1), &d, &[name("ns1.op.net")])
            .unwrap();
        assert_eq!(r.generation_of(&d), 6);
        // Failed edits leave the generation untouched.
        assert!(r
            .set_ds(RegistrarId(9), &d, std::slice::from_ref(&ds))
            .is_err());
        assert_eq!(r.generation_of(&d), 6);
    }

    #[test]
    fn audit_bookkeeping() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = Registry::new(Tld::Nl, &mut rng, FROM, UNTIL);
        r.accredit(RegistrarId(1));
        r.add_delegation(RegistrarId(1), &name("x.nl"), &[name("ns1.op.net")])
            .unwrap();
        r.record_audit(&name("x.nl"), true);
        r.record_audit(&name("x.nl"), false);
        assert!(r.discounts_cents[&RegistrarId(1)] > 0);
        assert_eq!(r.audit_failures[&RegistrarId(1)], 1);
        // gTLDs award nothing.
        let mut com = Registry::new(Tld::Com, &mut rng, FROM, UNTIL);
        com.accredit(RegistrarId(1));
        com.add_delegation(RegistrarId(1), &name("x.com"), &[name("ns1.op.net")])
            .unwrap();
        com.record_audit(&name("x.com"), true);
        assert!(!com.discounts_cents.contains_key(&RegistrarId(1)));
    }
}
