//! DNS operators: the organizations that run authoritative nameservers.
//!
//! A registrar's hosting arm, a third-party service like Cloudflare, and a
//! self-hosting domain owner are all `Operator`s. The operator owns the
//! `Authority` its nameserver hostnames point at and performs the zone
//! building/signing work for the domains it hosts.
//!
//! Scalability note: zones are materialized **only for signed domains**
//! (and probe domains). Unsigned customer domains exist solely as
//! delegations in the TLD zone; queries for them reach the operator and
//! get REFUSED, which the scanner reads as "no DNSKEY" — the same
//! conclusion a live scan of a parked, unsigned domain produces.

use std::sync::Arc;

use dsec_authserver::Authority;
use dsec_dnssec::{sign_zone, SignerConfig, SigningSet, ZoneKeys};
use dsec_wire::{Name, RData, Record, RrType, SoaRdata, Zone};

/// Index of an operator in the world's operator table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub u32);

/// One DNS operator.
pub struct Operator {
    /// Operator id.
    pub id: OperatorId,
    /// Display name ("GoDaddy", "Cloudflare", …).
    pub name: String,
    /// The second-level domain its nameservers live under
    /// (`domaincontrol.com` for GoDaddy) — the paper's grouping key.
    pub ns_domain: Name,
    /// Concrete nameserver hostnames (`ns01.<ns_domain>`, …).
    pub ns_hosts: Vec<Name>,
    authority: Arc<Authority>,
}

impl Operator {
    /// Creates an operator with `host_count` nameserver hostnames under
    /// `ns_domain`. The caller registers the hostnames on the network.
    pub fn new(id: OperatorId, name: impl Into<String>, ns_domain: Name, host_count: usize) -> Self {
        let ns_hosts = (1..=host_count.max(1))
            .map(|i| {
                ns_domain
                    .child(&format!("ns{i:02}"))
                    .expect("nameserver hostname fits")
            })
            .collect();
        Operator {
            id,
            name: name.into(),
            ns_domain,
            ns_hosts,
            authority: Arc::new(Authority::new()),
        }
    }

    /// The authority backing this operator's nameservers.
    pub fn authority(&self) -> Arc<Authority> {
        self.authority.clone()
    }

    /// Builds the standard customer zone for `domain`: SOA, NS (pointing
    /// at this operator), an apex A and a `www` A record.
    pub fn base_zone(&self, domain: &Name) -> Zone {
        let mut zone = Zone::new(domain.clone());
        zone.add(Record::new(
            domain.clone(),
            3600,
            RData::Soa(SoaRdata {
                mname: self.ns_hosts[0].clone(),
                rname: Name::parse("hostmaster.invalid").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        ))
        .expect("SOA in zone");
        for ns in &self.ns_hosts {
            zone.add(Record::new(domain.clone(), 3600, RData::Ns(ns.clone())))
                .expect("NS in zone");
        }
        zone.add(Record::new(
            domain.clone(),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .expect("apex A in zone");
        zone.add(Record::new(
            domain.child("www").expect("www label fits"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .expect("www A in zone");
        zone
    }

    /// Hosts `domain` unsigned (materializes a plain zone). Used for probe
    /// domains where the probe will inspect the zone; bulk unsigned
    /// domains skip this.
    pub fn host_unsigned(&self, domain: &Name) {
        self.authority.upsert_zone(self.base_zone(domain));
    }

    /// Hosts `domain` signed with `keys` (DNSKEY + RRSIG + NSEC published).
    pub fn host_signed(&self, domain: &Name, keys: &ZoneKeys, signer: &SignerConfig) {
        let mut zone = self.base_zone(domain);
        sign_zone(&mut zone, keys, signer).expect("matching keys sign the base zone");
        self.authority.upsert_zone(zone);
    }

    /// Hosts `domain` signed with an arbitrary [`SigningSet`] — the
    /// mid-rollover states where two key generations coexist.
    pub fn host_signed_set(&self, domain: &Name, set: &SigningSet, signer: &SignerConfig) {
        let mut zone = self.base_zone(domain);
        dsec_dnssec::sign_zone_set(&mut zone, set, signer)
            .expect("matching signing set signs the base zone");
        self.authority.upsert_zone(zone);
    }

    /// Removes `domain`'s zone (hosting cancelled or moved elsewhere).
    pub fn drop_zone(&self, domain: &Name) -> bool {
        self.authority.remove_zone(domain)
    }

    /// Whether this operator currently serves a DNSKEY for `domain`.
    pub fn serves_dnskey(&self, domain: &Name) -> bool {
        self.authority
            .with_zone(domain, |z| z.rrset(domain, RrType::Dnskey).is_some())
            .unwrap_or(false)
    }

    /// The DNSKEY RDATAs currently served for `domain`.
    pub fn served_dnskeys(&self, domain: &Name) -> Vec<dsec_wire::DnskeyRdata> {
        self.authority
            .with_zone(domain, |z| {
                z.rrset(domain, RrType::Dnskey)
                    .map(|set| {
                        set.records()
                            .iter()
                            .filter_map(|r| match &r.rdata {
                                RData::Dnskey(k) => Some(k.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }

    /// Publishes a CDS record in `domain`'s zone (used when the operator
    /// wants the registry's CDS scanner to pick up a DS change); signs it
    /// with the zone keys.
    pub fn publish_cds(
        &self,
        domain: &Name,
        keys: &ZoneKeys,
        ds: dsec_wire::DsRdata,
        signer: &SignerConfig,
    ) {
        self.authority.with_zone_mut(domain, |zone| {
            zone.add(Record::new(domain.clone(), 3600, RData::Cds(ds)))
                .expect("CDS in zone");
            let rrset = zone.rrset(domain, RrType::Cds).expect("just added");
            let sig = dsec_dnssec::sign_rrset(&rrset, &keys.zsk, keys.zsk_tag(), domain, signer);
            zone.add(sig).expect("CDS RRSIG in zone");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_crypto::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn operator() -> Operator {
        Operator::new(OperatorId(0), "TestOp", name("op.net"), 2)
    }

    #[test]
    fn hostnames_are_derived() {
        let op = operator();
        assert_eq!(op.ns_hosts, vec![name("ns01.op.net"), name("ns02.op.net")]);
        let single = Operator::new(OperatorId(1), "Solo", name("solo.net"), 0);
        assert_eq!(single.ns_hosts.len(), 1);
    }

    #[test]
    fn base_zone_shape() {
        let op = operator();
        let zone = op.base_zone(&name("cust.com"));
        assert!(zone.rrset(&name("cust.com"), RrType::Soa).is_some());
        assert_eq!(zone.rrset(&name("cust.com"), RrType::Ns).unwrap().len(), 2);
        assert!(zone.rrset(&name("www.cust.com"), RrType::A).is_some());
    }

    #[test]
    fn unsigned_hosting_serves_no_dnskey() {
        let op = operator();
        op.host_unsigned(&name("cust.com"));
        assert!(!op.serves_dnskey(&name("cust.com")));
        assert!(op.served_dnskeys(&name("cust.com")).is_empty());
    }

    #[test]
    fn signed_hosting_serves_dnskeys() {
        let op = operator();
        let mut rng = StdRng::seed_from_u64(9);
        let keys =
            ZoneKeys::generate_default(&mut rng, name("cust.com"), Algorithm::RsaSha256).unwrap();
        op.host_signed(
            &name("cust.com"),
            &keys,
            &SignerConfig::valid_from(1_450_000_000, 90 * 86400),
        );
        assert!(op.serves_dnskey(&name("cust.com")));
        assert_eq!(op.served_dnskeys(&name("cust.com")).len(), 2);
    }

    #[test]
    fn drop_zone_unhosts() {
        let op = operator();
        op.host_unsigned(&name("cust.com"));
        assert!(op.drop_zone(&name("cust.com")));
        assert!(!op.drop_zone(&name("cust.com")));
    }

    #[test]
    fn unhosted_domain_is_refused() {
        let op = operator();
        let q = dsec_wire::Message::query(1, name("ghost.com"), RrType::Dnskey, true);
        let resp = op.authority().handle_query(&q);
        assert_eq!(resp.rcode, dsec_wire::Rcode::Refused);
    }

    #[test]
    fn publish_cds_adds_signed_record() {
        let op = operator();
        let mut rng = StdRng::seed_from_u64(10);
        let keys =
            ZoneKeys::generate_default(&mut rng, name("cust.com"), Algorithm::RsaSha256).unwrap();
        let signer = SignerConfig::valid_from(1_450_000_000, 90 * 86400);
        op.host_signed(&name("cust.com"), &keys, &signer);
        op.publish_cds(
            &name("cust.com"),
            &keys,
            keys.ds(dsec_crypto::DigestType::Sha256),
            &signer,
        );
        let has_cds = op
            .authority()
            .with_zone(&name("cust.com"), |z| {
                z.rrset(&name("cust.com"), RrType::Cds).is_some()
            })
            .unwrap();
        assert!(has_cds);
    }
}
