//! Scheduled key-rollover lifecycles: styles, timing plans, and the
//! phase machine the daily tick drives.
//!
//! The one-shot primitives ([`crate::world::World::prepare_rollover`] /
//! `complete_rollover` / `roll_keys_abrupt`) model single moments. Real
//! transitions — the ones Osterweil et al. measure across 15 years of
//! deployed DNSSEC — are *schedules*: publish new material, wait for
//! propagation, move the parent DS through the registrar, withdraw the
//! old material. Every leg can be mistimed, and the registrar/registry
//! leg (the paper's chokepoint) is the one the child cannot hurry.
//!
//! A [`RolloverPlan`] pins the whole schedule to calendar days, so the
//! bogus window a mistimed DS swap opens is *computable in advance* and
//! the traffic plane can be checked against it day by day.

use crate::clock::SimDate;

/// Which rollover choreography the operator runs (RFC 6781 §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RolloverStyle {
    /// Pre-publish ZSK rollover: the incoming ZSK is published one
    /// propagation interval before it signs; the KSK — and therefore the
    /// parent DS — never changes.
    PrePublishZsk,
    /// Double-signature KSK rollover: both generations are published and
    /// both sign until the old set retires, so the DS may move at any
    /// point inside the window without a bogus moment.
    DoubleSignatureKsk,
    /// Algorithm rollover (RFC 6781 §4.1.4), run conservatively in the
    /// double-signature shape: the new generation uses a different
    /// signing algorithm.
    Algorithm,
}

impl RolloverStyle {
    /// Whether this style moves the parent DS (and therefore crosses the
    /// registrar/registry leg at all).
    pub fn changes_ds(&self) -> bool {
        !matches!(self, RolloverStyle::PrePublishZsk)
    }

    /// Short human label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RolloverStyle::PrePublishZsk => "pre-publish ZSK",
            RolloverStyle::DoubleSignatureKsk => "double-signature KSK",
            RolloverStyle::Algorithm => "algorithm",
        }
    }
}

/// When the registrar actually moves the DS, relative to the plan's
/// scheduled swap day — the timing-fault plane for the registrar leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsTiming {
    /// The registrar performs the swap on the scheduled day.
    OnSchedule,
    /// The registrar jumps the gun: the DS moves `days` before schedule.
    /// Landing before the zone serves the new keys opens a bogus window.
    Early {
        /// How many days early.
        days: u32,
    },
    /// The registrar sits on the request: the DS moves `days` after
    /// schedule. Landing after the old keys retire opens a bogus window.
    Late {
        /// How many days late.
        days: u32,
    },
    /// The request is dropped (the paper's §7 relay failure): the DS
    /// never moves, and the domain goes bogus at completion forever.
    Never,
}

/// Where a scheduled rollover currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloverPhase {
    /// Scheduled but the start day has not arrived.
    Scheduled,
    /// The transitional key material is being served (double-signature or
    /// pre-publish set).
    Prepared,
    /// The parent DS points at the new keys and the zone still serves
    /// the transitional set.
    DsSwapped,
    /// Old material withdrawn; the rollover is finished.
    Completed,
}

/// A complete, day-pinned rollover schedule for one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloverPlan {
    /// The choreography.
    pub style: RolloverStyle,
    /// Day the operator starts serving the transitional key set.
    pub start: SimDate,
    /// Propagation interval: the DS swap is *scheduled* for
    /// `start + prepare_days` (time for caches to see the new DNSKEYs).
    pub prepare_days: u32,
    /// Retirement interval: old material is withdrawn at
    /// `scheduled_swap + retire_days`, rollover complete.
    pub retire_days: u32,
    /// What the registrar actually does on the DS leg.
    pub ds_timing: DsTiming,
    /// Bounded RRSIG validity (days) while the rollover is in flight.
    /// `None` keeps the world's long default; `Some(v)` means a stalled
    /// operator's signatures genuinely expire after `v` days and the
    /// domain goes bogus for real.
    pub signature_validity_days: Option<u32>,
}

impl RolloverPlan {
    /// A correctly sequenced plan: DS on schedule, default propagation
    /// and retirement intervals, unbounded signature validity.
    pub fn correct(style: RolloverStyle, start: SimDate) -> Self {
        RolloverPlan {
            style,
            start,
            prepare_days: 3,
            retire_days: 3,
            ds_timing: DsTiming::OnSchedule,
            signature_validity_days: None,
        }
    }

    /// The same plan with a different DS timing.
    pub fn with_ds_timing(mut self, timing: DsTiming) -> Self {
        self.ds_timing = timing;
        self
    }

    /// The same plan with bounded signature validity.
    pub fn with_signature_validity_days(mut self, days: u32) -> Self {
        self.signature_validity_days = Some(days);
        self
    }

    /// The day the DS swap is scheduled for.
    pub fn scheduled_swap(&self) -> SimDate {
        self.start.plus_days(self.prepare_days)
    }

    /// The day the old material retires and the rollover completes.
    pub fn completion(&self) -> SimDate {
        self.scheduled_swap().plus_days(self.retire_days)
    }

    /// The day the DS actually moves under this plan's [`DsTiming`]
    /// (`None` when it never moves, or when the style has no DS leg).
    pub fn actual_swap(&self) -> Option<SimDate> {
        if !self.style.changes_ds() {
            return None;
        }
        match self.ds_timing {
            DsTiming::OnSchedule => Some(self.scheduled_swap()),
            DsTiming::Early { days } => Some(SimDate(self.scheduled_swap().0.saturating_sub(days))),
            DsTiming::Late { days } => Some(self.scheduled_swap().plus_days(days)),
            DsTiming::Never => None,
        }
    }

    /// The bogus window this plan opens, as a half-open day interval
    /// `[from, until)`; `until = None` means it never closes. `None`
    /// overall means the plan is safe: every day validates.
    ///
    /// The window is pure arithmetic because the operator side runs on
    /// schedule regardless of the DS leg: the transitional set serves
    /// from `start`, old material retires at `completion()`. A DS
    /// pointing at the new keys before `start`, or at the old keys from
    /// `completion()` on, fails validation.
    pub fn bogus_window(&self) -> Option<(SimDate, Option<SimDate>)> {
        if !self.style.changes_ds() {
            // No DS leg; pre-publish hazards are TTL-scale, below the
            // one-day tick resolution.
            return None;
        }
        match self.actual_swap() {
            None => Some((self.completion(), None)),
            Some(t) if t < self.start => Some((t, Some(self.start))),
            Some(t) if t <= self.completion() => None,
            Some(t) => Some((self.completion(), Some(t))),
        }
    }

    /// Whether `day` falls inside the plan's bogus window.
    pub fn is_bogus_on(&self, day: SimDate) -> bool {
        match self.bogus_window() {
            None => false,
            Some((from, None)) => day >= from,
            Some((from, Some(until))) => day >= from && day < until,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(timing: DsTiming) -> RolloverPlan {
        RolloverPlan::correct(RolloverStyle::DoubleSignatureKsk, SimDate(100)).with_ds_timing(timing)
    }

    #[test]
    fn schedule_arithmetic() {
        let p = plan(DsTiming::OnSchedule);
        assert_eq!(p.scheduled_swap(), SimDate(103));
        assert_eq!(p.completion(), SimDate(106));
        assert_eq!(p.actual_swap(), Some(SimDate(103)));
        assert_eq!(p.bogus_window(), None);
    }

    #[test]
    fn early_swap_inside_window_is_safe() {
        // 2 days early still lands after `start` (double-signature serves
        // both generations) — no bogus day.
        assert_eq!(plan(DsTiming::Early { days: 2 }).bogus_window(), None);
        // Swap exactly on the start day: safe.
        assert_eq!(plan(DsTiming::Early { days: 3 }).bogus_window(), None);
    }

    #[test]
    fn too_early_swap_opens_window_until_start() {
        let p = plan(DsTiming::Early { days: 5 });
        assert_eq!(p.bogus_window(), Some((SimDate(98), Some(SimDate(100)))));
        assert!(!p.is_bogus_on(SimDate(97)));
        assert!(p.is_bogus_on(SimDate(98)));
        assert!(p.is_bogus_on(SimDate(99)));
        assert!(!p.is_bogus_on(SimDate(100)), "zone serves both sets from start");
    }

    #[test]
    fn late_swap_opens_window_from_completion() {
        // 3 days late = exactly the completion day: still safe.
        assert_eq!(plan(DsTiming::Late { days: 3 }).bogus_window(), None);
        let p = plan(DsTiming::Late { days: 7 });
        assert_eq!(p.bogus_window(), Some((SimDate(106), Some(SimDate(110)))));
        assert!(p.is_bogus_on(SimDate(106)));
        assert!(p.is_bogus_on(SimDate(109)));
        assert!(!p.is_bogus_on(SimDate(110)), "DS finally lands");
    }

    #[test]
    fn never_swapped_is_bogus_forever_after_completion() {
        let p = plan(DsTiming::Never);
        assert_eq!(p.bogus_window(), Some((SimDate(106), None)));
        assert!(!p.is_bogus_on(SimDate(105)));
        assert!(p.is_bogus_on(SimDate(106)));
        assert!(p.is_bogus_on(SimDate(10_000)));
    }

    #[test]
    fn zsk_prepublish_has_no_ds_leg() {
        let p = RolloverPlan::correct(RolloverStyle::PrePublishZsk, SimDate(50))
            .with_ds_timing(DsTiming::Never);
        assert!(!p.style.changes_ds());
        assert_eq!(p.actual_swap(), None);
        assert_eq!(p.bogus_window(), None, "no DS to mistime");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RolloverStyle::Algorithm.label(), "algorithm");
        assert!(RolloverStyle::Algorithm.changes_ds());
        assert_eq!(RolloverStyle::PrePublishZsk.label(), "pre-publish ZSK");
    }
}
