//! Columnar, `NameId`-keyed per-domain state.
//!
//! The registration universe is write-once-read-often: a population build
//! inserts millions of domains, then campaigns sweep them every snapshot.
//! Keying that state on heap-allocated [`Name`]s means every probe hashes
//! (or compares) label bytes and every enumeration walks a pointer-chasing
//! `BTreeMap`. At 1:20 scale (~8M domains) that dominates the scan.
//!
//! [`DomainTable`] and [`DomainStore`] replace those maps with a
//! struct-of-arrays layout:
//!
//! * every name is interned once in the shared [`NameInterner`]
//!   (`crates/wire`), so identity is a `u32` [`NameId`];
//! * per-domain attributes live in dense, row-indexed columns (sponsor
//!   [`RegistrarId`], change generation, liveness for the registry table;
//!   the [`Domain`](crate::Domain) payload row — hosting, DNSSEC keys,
//!   expiry — plus the rollover slot for the world store);
//! * a `NameId → row` FNV map is the only hash probe left on the edge,
//!   and it hashes a single integer;
//! * canonical (RFC 4034) enumeration order — which the scanner and the
//!   zone files require — is a lazily rebuilt sorted row index behind an
//!   `RwLock`, so reads stay `&self` and an unchanged population sorts
//!   exactly once.
//!
//! Rows are never reused: a removed delegation keeps its row (and its
//! generation column, which must survive re-registration so stale scan
//! cache entries can never collide) and is simply marked dead. The row id
//! is therefore a stable per-table handle that the scanner uses as a cache
//! key in place of the name.

use std::sync::{Arc, RwLock, RwLockReadGuard};

use dsec_wire::{FnvHashMap, Name, NameId, NameInterner};

use crate::domain::Domain;
use crate::RegistrarId;

/// Sentinel for "no rollover in flight" in the rollover-slot column.
pub const NO_ROLLOVER_SLOT: u32 = u32::MAX;

/// Lazily maintained canonical-order view of the live rows.
#[derive(Debug, Default)]
struct OrderCache {
    /// Live rows sorted by name (RFC 4034 canonical order).
    sorted: Vec<u32>,
    /// Set whenever liveness changes; the next reader rebuilds.
    dirty: bool,
}

/// The registry-side columnar table: sponsor, change generation, and
/// liveness per delegated name. See the module docs for the layout.
#[derive(Debug)]
pub struct DomainTable {
    interner: Arc<NameInterner>,
    /// Row → canonical name (the API edge; never shrinks).
    names: Vec<Name>,
    /// Row → sponsoring registrar (last known for dead rows).
    sponsor: Vec<RegistrarId>,
    /// Row → change generation. Survives removal and re-registration.
    generation: Vec<u64>,
    /// Row → whether the delegation currently exists.
    live: Vec<bool>,
    /// Interned id → row. The single hash probe on the lookup edge.
    index: FnvHashMap<NameId, u32>,
    live_count: usize,
    order: RwLock<OrderCache>,
}

impl DomainTable {
    /// An empty table interning into `interner`.
    pub fn new(interner: Arc<NameInterner>) -> Self {
        DomainTable {
            interner,
            names: Vec::new(),
            sponsor: Vec::new(),
            generation: Vec::new(),
            live: Vec::new(),
            index: FnvHashMap::default(),
            live_count: 0,
            order: RwLock::new(OrderCache::default()),
        }
    }

    /// The row for `name`, if the table has ever seen it (live or dead).
    pub fn row_of(&self, name: &Name) -> Option<u32> {
        let id = self.interner.get(name)?;
        self.index.get(&id).copied()
    }

    /// The row for `name`, creating a dead generation-0 row on first
    /// sight. This is the write-side edge: one label hash (interner),
    /// one integer hash (index).
    pub fn intern_row(&mut self, name: &Name) -> u32 {
        let id = self.interner.intern(name);
        if let Some(&row) = self.index.get(&id) {
            return row;
        }
        let row = self.names.len() as u32;
        self.names.push(name.to_canonical());
        self.sponsor.push(RegistrarId(u32::MAX));
        self.generation.push(0);
        self.live.push(false);
        self.index.insert(id, row);
        row
    }

    /// The canonical name at `row`.
    pub fn name(&self, row: u32) -> &Name {
        &self.names[row as usize]
    }

    /// The change generation at `row`.
    pub fn generation(&self, row: u32) -> u64 {
        self.generation[row as usize]
    }

    /// The change generation of `name` (0 = never seen).
    pub fn generation_of(&self, name: &Name) -> u64 {
        self.row_of(name).map_or(0, |row| self.generation(row))
    }

    /// Bumps the change generation at `row`.
    pub fn bump(&mut self, row: u32) {
        self.generation[row as usize] += 1;
    }

    /// Whether the delegation at `row` currently exists.
    pub fn is_live(&self, row: u32) -> bool {
        self.live[row as usize]
    }

    /// The sponsor at `row` if the row is live.
    pub fn sponsor(&self, row: u32) -> Option<RegistrarId> {
        self.live[row as usize].then(|| self.sponsor[row as usize])
    }

    /// Re-sponsors a live row (registrar transfer; order and generation
    /// untouched — transfers are invisible on the wire).
    pub fn set_sponsor(&mut self, row: u32, sponsor: RegistrarId) {
        self.sponsor[row as usize] = sponsor;
    }

    /// Marks `row` live under `sponsor` (registration or revival).
    pub fn set_live(&mut self, row: u32, sponsor: RegistrarId) {
        let i = row as usize;
        if !self.live[i] {
            self.live[i] = true;
            self.live_count += 1;
            self.order.get_mut().expect("order lock").dirty = true;
        }
        self.sponsor[i] = sponsor;
    }

    /// Marks `row` dead (delegation removed). The generation column is
    /// kept so a re-registration resumes at a strictly larger value.
    pub fn set_dead(&mut self, row: u32) {
        let i = row as usize;
        if self.live[i] {
            self.live[i] = false;
            self.live_count -= 1;
            self.order.get_mut().expect("order lock").dirty = true;
        }
    }

    /// Number of live delegations.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Rebuilds the canonical-order row index if liveness changed since
    /// the last enumeration, then returns a read guard over it.
    fn ensure_order(&self) -> RwLockReadGuard<'_, OrderCache> {
        {
            let order = self.order.read().expect("order lock");
            if !order.dirty {
                return order;
            }
        }
        let mut order = self.order.write().expect("order lock");
        if order.dirty {
            let names = &self.names;
            let mut sorted: Vec<u32> = (0..self.names.len() as u32)
                .filter(|&row| self.live[row as usize])
                .collect();
            sorted.sort_unstable_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));
            order.sorted = sorted;
            order.dirty = false;
        }
        drop(order);
        self.order.read().expect("order lock")
    }

    /// Live rows in canonical (RFC 4034) order: `(row, &name, generation)`.
    /// The scanner's enumeration edge — generation reads are column reads,
    /// not map probes.
    pub fn ordered(&self) -> OrderedRows<'_> {
        OrderedRows {
            guard: self.ensure_order(),
            table: self,
            pos: 0,
        }
    }

    /// Live names in canonical order (the "zone file" view).
    pub fn ordered_names(&self) -> impl Iterator<Item = &Name> {
        self.ordered().map(|(_, name, _)| name)
    }
}

/// Iterator over a [`DomainTable`]'s live rows in canonical order,
/// holding the order-cache read guard for its lifetime.
pub struct OrderedRows<'a> {
    guard: RwLockReadGuard<'a, OrderCache>,
    table: &'a DomainTable,
    pos: usize,
}

impl<'a> Iterator for OrderedRows<'a> {
    type Item = (u32, &'a Name, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let &row = self.guard.sorted.get(self.pos)?;
        self.pos += 1;
        Some((
            row,
            &self.table.names[row as usize],
            self.table.generation[row as usize],
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.guard.sorted.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OrderedRows<'_> {}

/// The world-side store: dense [`Domain`] payload rows plus the
/// rollover-slot column, indexed by interned id, enumerated in canonical
/// order. Mirrors the `BTreeMap<Name, Domain>` surface it replaced
/// (domains are never removed from the world, so there are no tombstones).
#[derive(Debug)]
pub struct DomainStore {
    interner: Arc<NameInterner>,
    /// Row → domain payload (insertion-ordered, dense).
    rows: Vec<Domain>,
    /// Row → rollover slot ([`NO_ROLLOVER_SLOT`] = none in flight). The
    /// world's rollover driver keys its in-flight state on this.
    rollover: Vec<u32>,
    index: FnvHashMap<NameId, u32>,
    order: RwLock<OrderCache>,
}

impl DomainStore {
    /// An empty store interning into `interner`.
    pub fn new(interner: Arc<NameInterner>) -> Self {
        DomainStore {
            interner,
            rows: Vec::new(),
            rollover: Vec::new(),
            index: FnvHashMap::default(),
            order: RwLock::new(OrderCache::default()),
        }
    }

    /// The row for `name`, if present.
    pub fn row_of(&self, name: &Name) -> Option<u32> {
        let id = self.interner.get(name)?;
        self.index.get(&id).copied()
    }

    /// The domain payload at `row`.
    pub fn at(&self, row: u32) -> &Domain {
        &self.rows[row as usize]
    }

    /// Mutable domain payload at `row`.
    pub fn at_mut(&mut self, row: u32) -> &mut Domain {
        &mut self.rows[row as usize]
    }

    /// The rollover slot at `row` ([`NO_ROLLOVER_SLOT`] = none).
    pub fn rollover_slot(&self, row: u32) -> u32 {
        self.rollover[row as usize]
    }

    /// Sets the rollover slot at `row`.
    pub fn set_rollover_slot(&mut self, row: u32, slot: u32) {
        self.rollover[row as usize] = slot;
    }

    /// Lookup by name (one label hash + one integer hash).
    pub fn get(&self, name: &Name) -> Option<&Domain> {
        self.row_of(name).map(|row| self.at(row))
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &Name) -> Option<&mut Domain> {
        self.row_of(name).map(|row| &mut self.rows[row as usize])
    }

    /// Whether `name` has a row.
    pub fn contains_key(&self, name: &Name) -> bool {
        self.row_of(name).is_some()
    }

    /// Inserts (or replaces) the payload for `name`; returns the row.
    pub fn insert(&mut self, name: Name, domain: Domain) -> u32 {
        let id = self.interner.intern(&name);
        if let Some(&row) = self.index.get(&id) {
            self.rows[row as usize] = domain;
            return row;
        }
        let row = self.rows.len() as u32;
        self.rows.push(domain);
        self.rollover.push(NO_ROLLOVER_SLOT);
        self.index.insert(id, row);
        self.order.get_mut().expect("order lock").dirty = true;
        row
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn ensure_order(&self) -> RwLockReadGuard<'_, OrderCache> {
        {
            let order = self.order.read().expect("order lock");
            if !order.dirty {
                return order;
            }
        }
        let mut order = self.order.write().expect("order lock");
        if order.dirty {
            let rows = &self.rows;
            let mut sorted: Vec<u32> = (0..rows.len() as u32).collect();
            sorted.sort_unstable_by(|&a, &b| rows[a as usize].name.cmp(&rows[b as usize].name));
            order.sorted = sorted;
            order.dirty = false;
        }
        drop(order);
        self.order.read().expect("order lock")
    }

    /// Domains in canonical name order (the order the replaced `BTreeMap`
    /// iterated in — simulation draws depend on it, so it is part of the
    /// store's contract).
    pub fn values(&self) -> StoreValues<'_> {
        StoreValues {
            guard: self.ensure_order(),
            store: self,
            pos: 0,
        }
    }

    /// Mutable sweep over all domains in **row (insertion) order** — for
    /// order-insensitive bulk updates only.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Domain> {
        self.rows.iter_mut()
    }
}

impl std::ops::Index<&Name> for DomainStore {
    type Output = Domain;

    fn index(&self, name: &Name) -> &Domain {
        self.get(name).expect("domain present in store")
    }
}

/// Canonical-order iterator over a [`DomainStore`]'s payload rows.
pub struct StoreValues<'a> {
    guard: RwLockReadGuard<'a, OrderCache>,
    store: &'a DomainStore,
    pos: usize,
}

impl<'a> Iterator for StoreValues<'a> {
    type Item = &'a Domain;

    fn next(&mut self) -> Option<Self::Item> {
        let &row = self.guard.sorted.get(self.pos)?;
        self.pos += 1;
        Some(&self.store.rows[row as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.guard.sorted.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for StoreValues<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn table() -> DomainTable {
        DomainTable::new(Arc::new(NameInterner::new()))
    }

    #[test]
    fn rows_are_stable_across_removal_and_revival() {
        let mut t = table();
        let row = t.intern_row(&name("a.com"));
        t.set_live(row, RegistrarId(1));
        t.bump(row);
        assert_eq!(t.generation(row), 1);
        t.set_dead(row);
        t.bump(row);
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.sponsor(row), None, "dead rows have no sponsor");
        // Revival: same row, generation continues.
        let again = t.intern_row(&name("A.COM"));
        assert_eq!(again, row, "case-insensitive identity, stable row");
        t.set_live(again, RegistrarId(2));
        t.bump(again);
        assert_eq!(t.generation(row), 3);
        assert_eq!(t.sponsor(row), Some(RegistrarId(2)));
    }

    #[test]
    fn ordered_is_canonical_and_live_only() {
        let mut t = table();
        for label in ["delta.com", "alpha.com", "bravo.com"] {
            let row = t.intern_row(&name(label));
            t.set_live(row, RegistrarId(1));
        }
        let dead = t.intern_row(&name("bravo.com"));
        t.set_dead(dead);
        let names: Vec<String> = t.ordered().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["alpha.com.", "delta.com."]);
        // Revive: the order index catches up lazily.
        t.set_live(dead, RegistrarId(1));
        assert_eq!(t.ordered().count(), 3);
        assert_eq!(t.ordered().len(), 3);
    }

    #[test]
    fn generations_read_through_both_edges() {
        let mut t = table();
        assert_eq!(t.generation_of(&name("ghost.com")), 0);
        let row = t.intern_row(&name("x.com"));
        t.set_live(row, RegistrarId(1));
        t.bump(row);
        t.bump(row);
        assert_eq!(t.generation_of(&name("X.Com")), 2);
        let via_iter: Vec<u64> = t.ordered().map(|(_, _, g)| g).collect();
        assert_eq!(via_iter, vec![2], "column read matches name-keyed read");
    }

    #[test]
    fn store_mirrors_btreemap_semantics() {
        let interner = Arc::new(NameInterner::new());
        let mut s = DomainStore::new(interner);
        assert!(s.is_empty());
        let d = |n: &str| Domain {
            name: name(n),
            tld: crate::Tld::Com,
            registrar: RegistrarId(0),
            sponsor: RegistrarId(0),
            hosting: crate::Hosting::Owner,
            keys: None,
            created: crate::SimDate::from_ymd(2015, 1, 1),
            expires: crate::SimDate::from_ymd(2016, 1, 1),
            pending_partner_migration: false,
            registrant_email: "o@x.com".into(),
        };
        s.insert(name("zz.com"), d("zz.com"));
        s.insert(name("aa.com"), d("aa.com"));
        assert_eq!(s.len(), 2);
        assert!(s.contains_key(&name("AA.com")));
        let order: Vec<String> = s.values().map(|dom| dom.name.to_string()).collect();
        assert_eq!(order, vec!["aa.com.", "zz.com."], "canonical iteration");
        assert_eq!(s[&name("zz.com")].name, name("zz.com"));
        // Replacement keeps the row and the rollover slot column aligned.
        let row = s.insert(name("aa.com"), d("aa.com"));
        assert_eq!(s.rollover_slot(row), NO_ROLLOVER_SLOT);
        s.set_rollover_slot(row, 7);
        assert_eq!(s.rollover_slot(row), 7);
    }
}
