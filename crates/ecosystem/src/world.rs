//! The world: all registries, registrars, operators, and domains, plus the
//! customer-visible actions (purchase, enable DNSSEC, switch hosting,
//! convey a DS record over each channel) and the daily simulation tick.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use dsec_authserver::{Authority, FaultPlane, Network, QueryOutcome};
use dsec_crypto::{Algorithm, DigestType};
use dsec_dnssec::{
    classify, ds_matches, sign_zone, sign_zone_set, DeploymentStatus, Observation, SignerConfig,
    SigningSet, ZoneKeys,
};
use dsec_wire::{
    DsRdata, Message, Name, NameInterner, RData, Record, RrSet, RrType, SoaRdata, Zone,
};

use crate::anchor::AnchorRollPlan;
use crate::annex::Annex;
use crate::clock::SimDate;
use crate::domain::{Domain, Hosting};
use crate::events::{Event, EventLog};
use crate::operator::{Operator, OperatorId};
use crate::policy::{ExternalDs, OperatorDnssec, TldRole};
use crate::registrar::{Milestone, PolicyChange, Registrar};
use crate::registry::Registry;
use crate::rollover::{DsTiming, RolloverPhase, RolloverPlan, RolloverStyle};
use crate::table::{DomainStore, NO_ROLLOVER_SLOT};
use crate::tld::{Tld, ALL_TLDS};
use crate::RegistrarId;

/// How long a scan waits for each simulated UDP response, in ms.
/// Injected delays beyond this budget degrade into timeouts.
pub const SCAN_DEADLINE_MS: u32 = 500;

/// Rollover-slot tag: a one-shot CDS rollover ([`World::prepare_rollover`]).
const ROLLOVER_SLOT_ONE_SHOT: u32 = 1;
/// Rollover-slot tag: a scheduled lifecycle ([`World::schedule_rollover`]).
const ROLLOVER_SLOT_SCHEDULED: u32 = 2;

/// Result of a fault-aware domain query ([`World::query_domain_robust`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainQuery {
    /// A usable response arrived (any rcode except SERVFAIL).
    Answered {
        /// The response message.
        response: Message,
        /// Whether timeouts, truncation, or error rcodes forced retries.
        retried: bool,
    },
    /// Every rotation ended in SERVFAIL: the servers are up but the
    /// answer cannot be trusted to reflect the zone.
    Indeterminate,
    /// Registered servers exist but none answered within the retry
    /// budget.
    Unreachable,
    /// The domain has no delegated nameservers to ask (or no TLD).
    NoServers,
}

/// How trustworthy a fault-aware observation is
/// ([`World::observe_domain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationQuality {
    /// First-attempt answers everywhere.
    Clean,
    /// Answers required retries or TCP fallback, but were obtained.
    Degraded,
    /// Only error rcodes came back; served zone state is unknown.
    Indeterminate,
    /// No response at all; served zone state is unknown.
    Unreachable,
}

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// First simulated day.
    pub start: SimDate,
    /// Last simulated day (signature validity extends past it).
    pub end: SimDate,
    /// RNG seed (the whole simulation is deterministic).
    pub seed: u64,
    /// Size of the shared key pool (operators draw customer keys from a
    /// pool instead of generating RSA keys per domain; see DESIGN.md).
    pub key_pool: usize,
    /// How often registries with incentives audit signed domains, days.
    pub audit_interval_days: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            start: SimDate::from_ymd(2015, 3, 1),
            end: SimDate::from_ymd(2016, 12, 31),
            seed: 0xD5EC,
            key_pool: 4,
            audit_interval_days: 7,
        }
    }
}

/// A third-party DNS operator profile (§7).
pub struct ThirdParty {
    /// The underlying operator.
    pub operator: OperatorId,
    /// When (if ever) it launches DNSSEC support (Cloudflare: 2015-11-11;
    /// DNSPod: never in the window).
    pub dnssec_launch: Option<SimDate>,
    /// Per-day probability that an unsigned hosted domain opts in after
    /// launch.
    pub daily_optin_hazard: f64,
    /// Probability the owner successfully relays the DS to the registrar
    /// (the paper measures ≈ 60%).
    pub relay_success: f64,
}

/// How a customer conveys a DS record to the registrar.
#[derive(Debug, Clone)]
pub enum DsSubmission {
    /// The registrar's web form.
    Web,
    /// Email. `claimed_from` is the From: header (forgeable); `actual_from`
    /// is who really controls the sending mailbox.
    Email {
        /// The (forgeable) From: header.
        claimed_from: String,
        /// The mailbox the sender actually controls.
        actual_from: String,
    },
    /// Live web chat with a support agent.
    Chat,
    /// A support ticket.
    Ticket,
    /// Ask the registrar to fetch the DNSKEY and derive the DS itself.
    FetchDnskey,
}

/// Outcome of a DS conveyance attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadOutcome {
    /// Installed at the registry for the intended domain.
    Accepted,
    /// SECURITY: the agent installed it on someone else's domain.
    AcceptedOnWrongDomain(Name),
    /// Rejected: the registrar validated the DS and it did not match the
    /// served DNSKEY.
    RejectedInvalid,
    /// Rejected: this channel does not exist at this registrar.
    ChannelUnsupported,
    /// Rejected: the email could not be authenticated.
    EmailNotVerified,
    /// Rejected: DNSSEC is not supported for this TLD / this registrar.
    DnssecUnsupported,
}

/// Errors from customer actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionError {
    /// The registrar does not sell this TLD.
    TldNotSold,
    /// The domain name is already registered.
    NameTaken,
    /// No such domain.
    NoSuchDomain,
    /// The registrar cannot do DNSSEC in this hosting arrangement.
    DnssecUnsupported,
    /// DNSSEC is available but costs money (GoDaddy's $35/yr premium).
    RequiresPayment {
        /// Yearly price in US cents.
        cents_per_year: u32,
    },
    /// The action does not apply to the domain's hosting arrangement.
    WrongHosting,
    /// `complete_rollover` was called with no rollover prepared.
    NoPendingRollover,
    /// A rollover is already prepared or scheduled for this domain;
    /// finish or cancel it before starting another.
    RolloverInProgress,
    /// A registry-level failure.
    Registry(String),
}

/// A scheduled rollover in flight for one domain (see
/// [`crate::rollover::RolloverPlan`] for the schedule arithmetic).
#[derive(Debug, Clone)]
pub struct RolloverState {
    /// The day-pinned schedule being executed.
    pub plan: RolloverPlan,
    /// Where the operator side currently stands.
    pub phase: RolloverPhase,
    /// Whether the registrar/registry leg has actually moved the DS.
    pub ds_swapped: bool,
    /// Operator frozen mid-rollover (outage): phase work and signature
    /// refresh stop until [`World::resume_rollover`]; the DS leg keeps
    /// its own schedule — the registrar is a different organisation.
    pub stalled: bool,
    old_keys: ZoneKeys,
    new_keys: ZoneKeys,
    /// Expiration (epoch seconds) of the RRSIGs currently served, when
    /// the plan bounds signature validity.
    signed_until: Option<u32>,
    expiry_noted: bool,
}

impl RolloverState {
    /// The DS of the incoming key generation (what the registrar must
    /// install at the registry).
    pub fn incoming_ds(&self) -> DsRdata {
        self.new_keys.ds(DigestType::Sha256)
    }

    /// The incoming key generation.
    pub fn incoming_keys(&self) -> &ZoneKeys {
        &self.new_keys
    }

    /// The outgoing key generation.
    pub fn outgoing_keys(&self) -> &ZoneKeys {
        &self.old_keys
    }

    /// When the currently served RRSIGs lapse (epoch seconds), if the
    /// plan bounds validity and the transitional set is being served.
    pub fn signed_until(&self) -> Option<u32> {
        self.signed_until
    }
}

/// Internal queue entry for a mass-signing milestone in progress.
struct MassSignTask {
    registrar: RegistrarId,
    remaining: Vec<Name>,
    per_day: usize,
}

/// A scheduled root trust-anchor roll in progress (RFC 5011 on the
/// producer side; followers are modelled by [`World::trust_anchor`]).
struct AnchorRollState {
    /// The calendar.
    plan: AnchorRollPlan,
    /// The successor root keys (generated at scheduling time).
    new_keys: ZoneKeys,
    /// Publish day has passed: root is double-signed.
    published: bool,
    /// Promotion day has passed: followers trust the successor.
    promoted: bool,
    /// Revoke day has passed: root signed by the successor only.
    revoked: bool,
}

/// The simulated world.
pub struct World {
    /// Today's date.
    pub today: SimDate,
    /// Construction parameters.
    pub config: WorldConfig,
    /// The network all queries flow over.
    pub network: Arc<Network>,
    root_keys: ZoneKeys,
    /// The root authority (kept so a trust-anchor roll can re-sign and
    /// republish the root zone after construction).
    root_auth: Arc<Authority>,
    /// The root server's hostname.
    root_ns: Name,
    /// A scheduled root trust-anchor roll, if any.
    anchor_roll: Option<AnchorRollState>,
    registries: BTreeMap<Tld, Registry>,
    registrars: Vec<Registrar>,
    operators: Vec<Operator>,
    third_parties: Vec<ThirdParty>,
    domains: DomainStore,
    /// Shared authority for all owner-hosted zones.
    owner_authority: Arc<Authority>,
    key_pool: Vec<ZoneKeys>,
    mass_sign_queue: Vec<MassSignTask>,
    /// RFC 8078 bootstrap observation: first day a DS-less domain was seen
    /// publishing a self-consistent CDS.
    cds_first_seen: BTreeMap<Name, SimDate>,
    /// Two-phase key rollovers in progress (new keys awaiting the DS).
    pending_rollover: BTreeMap<Name, ZoneKeys>,
    /// Scheduled rollover lifecycles driven by the daily tick.
    rollovers: BTreeMap<Name, RolloverState>,
    /// Name interner shared by every registry, the domain store, and any
    /// downstream scanner/traffic machinery that wants stable `NameId`s.
    interner: Arc<NameInterner>,
    /// Event log.
    pub events: EventLog,
    /// Whether a purchase from a default-signing registrar is signed
    /// immediately. Population builders turn this off so the initial
    /// signed fraction is controlled by the calibration data instead of
    /// the (later-arriving) policy.
    pub auto_sign_on_purchase: bool,
    /// World-lifetime extension slots for downstream caches (see
    /// [`Annex`]). Pure performance state: nothing stored here may
    /// change results.
    annex: Annex,
    rng: StdRng,
}

impl World {
    /// Builds the world: root + five TLD registries, all signed, with the
    /// chain root → TLD established (TLD DS in the root zone).
    pub fn new(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let valid_from = config.start.epoch_seconds().saturating_sub(86_400);
        let valid_until = config.end.plus_days(400).epoch_seconds();

        let network = Arc::new(Network::new());
        let interner = Arc::new(NameInterner::new());

        // Registries (all sharing one interner so `NameId`s are global).
        let mut registries = BTreeMap::new();
        for tld in ALL_TLDS {
            let registry =
                Registry::with_interner(tld, &mut rng, valid_from, valid_until, interner.clone());
            network.register(tld.registry_ns(), registry.authority());
            registries.insert(tld, registry);
        }

        // Root zone with TLD delegations + DS.
        let root_keys = ZoneKeys::generate_default(&mut rng, Name::root(), Algorithm::RsaSha256)
            .expect("RSA-SHA256 supported");
        let root_ns = Name::parse("a.root-servers.sim").unwrap();
        let mut root_zone = Zone::new(Name::root());
        root_zone
            .add(Record::new(
                Name::root(),
                3600,
                RData::Soa(SoaRdata {
                    mname: root_ns.clone(),
                    rname: Name::parse("hostmaster.root-servers.sim").unwrap(),
                    serial: 1,
                    refresh: 7200,
                    retry: 3600,
                    expire: 1_209_600,
                    minimum: 300,
                }),
            ))
            .unwrap();
        root_zone
            .add(Record::new(Name::root(), 3600, RData::Ns(root_ns.clone())))
            .unwrap();
        for (tld, registry) in &registries {
            root_zone
                .add(Record::new(
                    tld.zone(),
                    172_800,
                    RData::Ns(tld.registry_ns()),
                ))
                .unwrap();
            root_zone
                .add(Record::new(
                    tld.zone(),
                    86_400,
                    RData::Ds(registry.keys().ds(DigestType::Sha256)),
                ))
                .unwrap();
        }
        let signer = SignerConfig {
            inception: valid_from,
            expiration: valid_until,
            nsec: true,
            nsec3: None,
            dnskey_ttl: 3600,
        };
        sign_zone(&mut root_zone, &root_keys, &signer).expect("root zone signs");
        let root_auth = Arc::new(Authority::new());
        root_auth.upsert_zone(root_zone);
        network.register(root_ns.clone(), root_auth.clone());
        network.set_root_hints(vec![root_ns.clone()]);

        // Shared key pool for customer zones.
        let pool_template = Name::parse("pool.invalid").unwrap();
        let key_pool: Vec<ZoneKeys> = (0..config.key_pool.max(1))
            .map(|_| {
                ZoneKeys::generate_default(&mut rng, pool_template.clone(), Algorithm::RsaSha256)
                    .expect("RSA-SHA256 supported")
            })
            .collect();

        World {
            today: config.start,
            config,
            network,
            root_keys,
            root_auth,
            root_ns,
            anchor_roll: None,
            registries,
            registrars: Vec::new(),
            operators: Vec::new(),
            third_parties: Vec::new(),
            domains: DomainStore::new(interner.clone()),
            owner_authority: Arc::new(Authority::new()),
            key_pool,
            mass_sign_queue: Vec::new(),
            cds_first_seen: BTreeMap::new(),
            pending_rollover: BTreeMap::new(),
            rollovers: BTreeMap::new(),
            interner,
            events: EventLog::new(),
            auto_sign_on_purchase: true,
            annex: Annex::default(),
            rng,
        }
    }

    // ------------------------------------------------------------ setup --

    /// The trust anchors an RFC 5011 follower holds *today*.
    ///
    /// Without a scheduled anchor roll this is the construction-time
    /// root DS, unchanged. During a roll the follower keeps trusting
    /// the old anchor and adds the successor only once its add
    /// hold-down has elapsed ([`AnchorRollPlan::promotion`]); before
    /// that day the successor sits in AddPend and contributes nothing.
    /// A mistimed roll that revokes the old key inside the hold-down
    /// therefore leaves this set pointing at a key the root zone is no
    /// longer signed with — the stranded-validator window.
    pub fn trust_anchor(&self) -> Vec<DsRdata> {
        let mut anchors = vec![self.root_keys.ds(DigestType::Sha256)];
        if let Some(roll) = &self.anchor_roll {
            if roll.published && self.today >= roll.plan.promotion() {
                anchors.push(roll.new_keys.ds(DigestType::Sha256));
            }
        }
        anchors
    }

    /// Schedules a root trust-anchor roll (one at a time): successor
    /// keys are generated now, published next to the old ones on the
    /// plan's publish day, and the old anchor revoked — root re-signed
    /// by the successor only — on its revoke day. Driven by
    /// [`World::tick`] like the rollover plane.
    pub fn schedule_anchor_roll(&mut self, plan: AnchorRollPlan) {
        let new_keys =
            ZoneKeys::generate_default(&mut self.rng, Name::root(), Algorithm::RsaSha256)
                .expect("RSA-SHA256 supported");
        self.anchor_roll = Some(AnchorRollState {
            plan,
            new_keys,
            published: false,
            promoted: false,
            revoked: false,
        });
    }

    /// The scheduled anchor-roll plan, if one exists.
    pub fn anchor_roll_plan(&self) -> Option<AnchorRollPlan> {
        self.anchor_roll.as_ref().map(|s| s.plan)
    }

    /// Crosses any anchor-roll phase boundaries today's date has
    /// reached, re-signing and republishing the root zone at each.
    fn drive_anchor_roll(&mut self) {
        let today = self.today;
        let Some(mut roll) = self.anchor_roll.take() else {
            return;
        };
        if !roll.published && today >= roll.plan.publish {
            roll.published = true;
            let set = SigningSet::double(&self.root_keys, &roll.new_keys)
                .expect("both key sets belong to the root");
            self.resign_root(&set);
            self.events.record(
                today,
                Event::TrustAnchorPublished {
                    trusted_on: roll.plan.promotion(),
                },
            );
        }
        if roll.published && !roll.promoted && today >= roll.plan.promotion() {
            roll.promoted = true;
            self.events.record(today, Event::TrustAnchorPromoted);
        }
        if roll.published && !roll.revoked && today >= roll.plan.revoke {
            roll.revoked = true;
            let set = SigningSet::single(&roll.new_keys);
            self.resign_root(&set);
            self.events.record(
                today,
                Event::TrustAnchorRevoked {
                    followers_ready: roll.promoted,
                },
            );
        }
        self.anchor_roll = Some(roll);
    }

    /// Rebuilds the root zone (same recipe as construction, serial
    /// bumped to today) and signs it with `set`.
    fn resign_root(&mut self, set: &SigningSet) {
        let mut zone = Zone::new(Name::root());
        zone.add(Record::new(
            Name::root(),
            3600,
            RData::Soa(SoaRdata {
                mname: self.root_ns.clone(),
                rname: Name::parse("hostmaster.root-servers.sim").unwrap(),
                serial: 1 + self.today.0,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        ))
        .expect("SOA fits");
        zone.add(Record::new(
            Name::root(),
            3600,
            RData::Ns(self.root_ns.clone()),
        ))
        .expect("NS fits");
        for (tld, registry) in &self.registries {
            zone.add(Record::new(
                tld.zone(),
                172_800,
                RData::Ns(tld.registry_ns()),
            ))
            .expect("TLD NS fits");
            zone.add(Record::new(
                tld.zone(),
                86_400,
                RData::Ds(registry.keys().ds(DigestType::Sha256)),
            ))
            .expect("TLD DS fits");
        }
        let signer = self.signer_config();
        sign_zone_set(&mut zone, set, &signer).expect("root zone re-signs");
        self.root_auth.upsert_zone(zone);
    }

    /// Adds a standalone DNS operator with `host_count` nameservers under
    /// `ns_domain` and wires its hostnames into the network.
    pub fn add_operator(
        &mut self,
        name: impl Into<String>,
        ns_domain: Name,
        host_count: usize,
    ) -> OperatorId {
        let id = OperatorId(self.operators.len() as u32);
        let operator = Operator::new(id, name, ns_domain, host_count);
        for host in &operator.ns_hosts {
            self.network.register(host.clone(), operator.authority());
        }
        self.operators.push(operator);
        id
    }

    /// Adds a registrar (creating its hosting operator) and accredits it
    /// at every registry where its policy says `TldRole::Registrar`.
    pub fn add_registrar(
        &mut self,
        name: impl Into<String>,
        ns_domain: Name,
        policy: crate::policy::RegistrarPolicy,
    ) -> RegistrarId {
        let name = name.into();
        let operator = self.add_operator(name.clone(), ns_domain, 2);
        let id = RegistrarId(self.registrars.len() as u32);
        for (tld, tld_policy) in &policy.tlds {
            if tld_policy.role == TldRole::Registrar {
                self.registries
                    .get_mut(tld)
                    .expect("all TLDs present")
                    .accredit(id);
            }
        }
        self.registrars.push(Registrar {
            id,
            name,
            policy,
            operator,
            milestones: Vec::new(),
            daily_optin_hazard: 0.0,
        });
        id
    }

    /// Adds a third-party DNS operator (Cloudflare / DNSPod model).
    pub fn add_third_party(
        &mut self,
        name: impl Into<String>,
        ns_domain: Name,
        dnssec_launch: Option<SimDate>,
        daily_optin_hazard: f64,
        relay_success: f64,
    ) -> OperatorId {
        let operator = self.add_operator(name, ns_domain, 2);
        self.third_parties.push(ThirdParty {
            operator,
            dnssec_launch,
            daily_optin_hazard,
            relay_success,
        });
        operator
    }

    /// Schedules a policy milestone for a registrar.
    pub fn add_milestone(&mut self, registrar: RegistrarId, on: SimDate, change: PolicyChange) {
        self.registrars[registrar.0 as usize]
            .milestones
            .push(Milestone { on, change });
    }

    /// Sets a registrar's opt-in hazard (population adoption speed).
    pub fn set_optin_hazard(&mut self, registrar: RegistrarId, hazard: f64) {
        self.registrars[registrar.0 as usize].daily_optin_hazard = hazard;
    }

    /// Changes a registrar's external-DS channel immediately (milestones
    /// do the same on a schedule).
    pub fn set_external_ds(&mut self, registrar: RegistrarId, channel: ExternalDs) {
        self.registrars[registrar.0 as usize].policy.external_ds = channel;
    }

    /// Overrides a domain's next renewal date (population builders stagger
    /// renewals so pre-existing registrations don't all renew at once).
    pub fn set_expiry(&mut self, domain: &Name, expires: SimDate) {
        if let Some(d) = self.domains.get_mut(&domain.to_canonical()) {
            d.expires = expires;
        }
    }

    // --------------------------------------------------------- accessors --

    /// Looks up a registrar by display name.
    pub fn registrar_by_name(&self, name: &str) -> Option<RegistrarId> {
        self.registrars
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.id)
    }

    /// Registrar profile access.
    pub fn registrar(&self, id: RegistrarId) -> &Registrar {
        &self.registrars[id.0 as usize]
    }

    /// Number of registrars.
    pub fn registrar_count(&self) -> usize {
        self.registrars.len()
    }

    /// Operator access.
    pub fn operator(&self, id: OperatorId) -> &Operator {
        &self.operators[id.0 as usize]
    }

    /// Registry access.
    pub fn registry(&self, tld: Tld) -> &Registry {
        &self.registries[&tld]
    }

    /// The world's extension slots (downstream world-lifetime caches).
    pub fn annex(&self) -> &Annex {
        &self.annex
    }

    /// The name interner shared by every registry and the domain store.
    pub fn interner(&self) -> &Arc<NameInterner> {
        &self.interner
    }

    /// Domain access.
    pub fn domain(&self, name: &Name) -> Option<&Domain> {
        self.domains.get(&name.to_canonical())
    }

    /// Iterates all domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Number of registered domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The combined change generation of `domain`: registry-side edits
    /// (delegation/NS/DS) plus served-zone edits (signing, rollovers,
    /// CDS publication, hosting moves). Two scans of an unchanged world
    /// see the same generation; any mutation a scan could observe makes
    /// it strictly larger. The incremental [`ScanCache`] in the scanner
    /// crate keys its entries on this value — see DESIGN.md §9 for the
    /// invalidation contract every new mutation path must honour.
    pub fn domain_generation(&self, domain: &Name) -> u64 {
        // `Name` hashes case-insensitively (RFC 4034); no canonical copy.
        // Served-zone edits are folded into the registry's columnar counter
        // by `bump_zone_generation`, so the scan path pays one probe.
        Tld::of_domain(domain)
            .map(|tld| self.registries[&tld].generation_of(domain))
            .unwrap_or(0)
    }

    /// Records a served-zone edit for `domain` (cache invalidation).
    /// Every registered domain sits under a studied TLD (purchase is the
    /// only entry into the store), so the registry fold is total.
    fn bump_zone_generation(&mut self, domain: &Name) {
        if let Some(registry) = Tld::of_domain(domain).and_then(|tld| self.registries.get_mut(&tld))
        {
            registry.note_external_change(domain);
        }
    }

    // ----------------------------------------------------------- actions --

    /// Buys `label`.`tld` from `registrar` with the given hosting.
    pub fn purchase(
        &mut self,
        registrar: RegistrarId,
        label: &str,
        tld: Tld,
        hosting: Hosting,
        registrant_email: impl Into<String>,
    ) -> Result<Name, ActionError> {
        let name = tld
            .zone()
            .child(label)
            .map_err(|_| ActionError::NameTaken)?;
        if self.domains.contains_key(&name.to_canonical()) {
            return Err(ActionError::NameTaken);
        }
        let sponsor = self.resolve_sponsor(registrar, tld)?;
        let ns_hosts = self.ns_hosts_for(&name, registrar, &hosting);
        self.registries
            .get_mut(&tld)
            .expect("all TLDs present")
            .add_delegation(sponsor, &name, &ns_hosts)
            .map_err(|e| ActionError::Registry(e.to_string()))?;

        // Owner hosting: serve a plain zone from the shared owner authority.
        if hosting == Hosting::Owner {
            self.host_owner_zone(&name, None);
        }

        let domain = Domain {
            name: name.clone(),
            tld,
            registrar,
            sponsor,
            hosting: hosting.clone(),
            keys: None,
            created: self.today,
            expires: self.today.plus_days(365),
            pending_partner_migration: false,
            registrant_email: registrant_email.into(),
        };
        self.domains.insert(name.to_canonical(), domain);
        self.events.record(
            self.today,
            Event::Purchased {
                domain: name.clone(),
                registrar,
            },
        );

        // Default signing when the registrar hosts and signs by default.
        if let Hosting::Registrar { plan } = hosting {
            let signs = self.auto_sign_on_purchase
                && self.registrars[registrar.0 as usize]
                    .policy
                    .operator_dnssec
                    .signs_by_default(plan);
            if signs {
                self.sign_hosted(&name)?;
            }
        }
        Ok(name)
    }

    /// Customer opts in to registrar-operated DNSSEC (OVH model), or
    /// enables it where it is supported but not default.
    pub fn enable_dnssec(&mut self, domain: &Name) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        let Hosting::Registrar { .. } = d.hosting else {
            return Err(ActionError::WrongHosting);
        };
        match &self.registrars[d.registrar.0 as usize].policy.operator_dnssec {
            OperatorDnssec::Unsupported => Err(ActionError::DnssecUnsupported),
            OperatorDnssec::Paid { cents_per_year, .. } => Err(ActionError::RequiresPayment {
                cents_per_year: *cents_per_year,
            }),
            _ => self.sign_hosted(domain),
        }
    }

    /// Pays for and enables DNSSEC on a paid plan (GoDaddy model).
    pub fn enable_dnssec_paid(&mut self, domain: &Name) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        let Hosting::Registrar { .. } = d.hosting else {
            return Err(ActionError::WrongHosting);
        };
        match &self.registrars[d.registrar.0 as usize].policy.operator_dnssec {
            OperatorDnssec::Unsupported => Err(ActionError::DnssecUnsupported),
            _ => self.sign_hosted(domain),
        }
    }

    /// Switches a domain to owner-run nameservers (`ns1.<domain>`); the
    /// previous hosting zone is dropped and the registry NS set updated.
    pub fn switch_to_owner_hosting(&mut self, domain: &Name) -> Result<Name, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let (sponsor, tld, old_hosting, registrar) =
            (d.sponsor, d.tld, d.hosting.clone(), d.registrar);
        // Drop old zone.
        match old_hosting {
            Hosting::Registrar { .. } => {
                let op = self.registrars[registrar.0 as usize].operator;
                self.operators[op.0 as usize].drop_zone(domain);
            }
            Hosting::ThirdParty { operator } => {
                self.operators[operator.0 as usize].drop_zone(domain);
            }
            Hosting::Owner => {}
        }
        let ns_host = self.host_owner_zone(domain, None);
        let registry = self.registries.get_mut(&tld).expect("all TLDs present");
        registry
            .set_ns(sponsor, domain, std::slice::from_ref(&ns_host))
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        // Leaving registrar hosting tears down its DNSSEC state: any DS
        // the registrar had uploaded is withdrawn along with the keys.
        registry
            .remove_ds(sponsor, domain)
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        let d = self.domains.get_mut(&key).expect("checked above");
        d.hosting = Hosting::Owner;
        d.keys = None;
        Ok(ns_host)
    }

    /// The owner signs their self-hosted zone; returns the DS record that
    /// must now be conveyed to the registrar.
    pub fn owner_sign_zone(&mut self, domain: &Name) -> Result<DsRdata, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        if d.hosting != Hosting::Owner {
            return Err(ActionError::WrongHosting);
        }
        let keys = self.pool_keys_salted(domain, 1);
        self.host_owner_zone(domain, Some(&keys));
        let ds = keys.ds(DigestType::Sha256);
        self.domains.get_mut(&key).expect("checked").keys = Some(keys);
        self.events.record(
            self.today,
            Event::Signed {
                domain: domain.clone(),
            },
        );
        Ok(ds)
    }

    /// Conveys a DS record to the registrar over `via`. This is the crux
    /// of §5.3/§6.1: which channels exist, whether they validate, and
    /// whether they authenticate the sender.
    pub fn upload_ds(
        &mut self,
        domain: &Name,
        ds: DsRdata,
        via: DsSubmission,
    ) -> Result<UploadOutcome, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let registrar = d.registrar;
        let tld = d.tld;
        let sponsor = d.sponsor;
        let registrant_email = d.registrant_email.clone();
        let policy = self.registrars[registrar.0 as usize].policy.clone();
        // Note: the per-TLD `publishes_ds` flag gates only the *automatic*
        // upload for registrar-hosted signing. The paper found that even
        // home-TLD-only registrars (Loopia, KPN) would upload a DS for an
        // externally hosted domain when explicitly asked (§6.3), so the
        // customer channel works for every TLD the registrar sells.
        let Some(channel_check) = self.channel_matches(&policy.external_ds, &via) else {
            return Ok(UploadOutcome::ChannelUnsupported);
        };

        // Channel-specific authentication.
        if let (
                ExternalDs::Email {
                    verifies_sender,
                    accepts_foreign_sender,
                    ..
                },
                DsSubmission::Email {
                    claimed_from,
                    actual_from,
                },
            ) = (&policy.external_ds, &via) {
            let authentic = actual_from == &registrant_email;
            let header_ok = claimed_from == &registrant_email;
            let accepted = if *verifies_sender {
                authentic
            } else if *accepts_foreign_sender {
                true
            } else {
                header_ok // forgeable!
            };
            if !accepted {
                return Ok(UploadOutcome::EmailNotVerified);
            }
            if !authentic {
                self.events.record(
                    self.today,
                    Event::ForgedEmailAccepted {
                        domain: domain.clone(),
                        claimed_from: claimed_from.clone(),
                    },
                );
            }
        }

        // FetchDnskey derives the DS itself from the served DNSKEY.
        let effective_ds = if matches!(policy.external_ds, ExternalDs::FetchDnskey)
            && matches!(via, DsSubmission::FetchDnskey)
        {
            let served = self.served_dnskeys(domain);
            let Some(ksk) = served.iter().find(|k| k.is_ksk()).or(served.first()) else {
                return Ok(UploadOutcome::RejectedInvalid);
            };
            dsec_dnssec::make_ds(domain, ksk, DigestType::Sha256)
                .expect("sha256 supported")
        } else {
            ds
        };

        // Validation (only OVH/DreamHost-style channels do this).
        if channel_check {
            let served = self.served_dnskeys(domain);
            let matches_any = served
                .iter()
                .any(|k| ds_matches(domain, k, &effective_ds) == Some(true));
            if !matches_any {
                self.events.record(
                    self.today,
                    Event::DsRejected {
                        domain: domain.clone(),
                        reason: "DS does not match served DNSKEY".into(),
                    },
                );
                return Ok(UploadOutcome::RejectedInvalid);
            }
        }

        // Chat channel: agent may paste onto the wrong domain.
        if let (ExternalDs::Chat { mistake_rate }, DsSubmission::Chat) =
            (&policy.external_ds, &via)
        {
            if self.rng.random::<f64>() < *mistake_rate {
                if let Some(victim) = self.random_other_domain(registrar, domain) {
                    let victim_sponsor = self.domains[&victim.to_canonical()].sponsor;
                    let victim_tld = self.domains[&victim.to_canonical()].tld;
                    let _ = self
                        .registries
                        .get_mut(&victim_tld)
                        .expect("all TLDs present")
                        .set_ds(victim_sponsor, &victim, std::slice::from_ref(&effective_ds));
                    self.events.record(
                        self.today,
                        Event::DsOnWrongDomain {
                            intended: domain.clone(),
                            victim: victim.clone(),
                        },
                    );
                    return Ok(UploadOutcome::AcceptedOnWrongDomain(victim));
                }
            }
        }

        self.registries
            .get_mut(&tld)
            .expect("all TLDs present")
            .set_ds(sponsor, domain, &[effective_ds])
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        self.events.record(
            self.today,
            Event::DsPublished {
                domain: domain.clone(),
            },
        );
        Ok(UploadOutcome::Accepted)
    }

    /// Conveys an NS change to the registrar over `via` — the second half
    /// of the registrar-channel attack surface. The same channel and
    /// sender-authentication policy as [`World::upload_ds`] applies (a
    /// registrar that accepts a forged-From DS email accepts a forged-From
    /// redelegation too); DNSKEY validation does not, because an NS set
    /// has nothing to check against the served keys.
    pub fn submit_ns_change(
        &mut self,
        domain: &Name,
        ns_hosts: &[Name],
        via: DsSubmission,
    ) -> Result<UploadOutcome, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let tld = d.tld;
        let sponsor = d.sponsor;
        let registrant_email = d.registrant_email.clone();
        let policy = self.registrars[d.registrar.0 as usize].policy.clone();
        if self.channel_matches(&policy.external_ds, &via).is_none() {
            return Ok(UploadOutcome::ChannelUnsupported);
        }

        // Same sender authentication as the DS path: only `verifies_sender`
        // checks the envelope; a header-only check is forgeable.
        let mut forged_from = None;
        if let (
            ExternalDs::Email {
                verifies_sender,
                accepts_foreign_sender,
                ..
            },
            DsSubmission::Email {
                claimed_from,
                actual_from,
            },
        ) = (&policy.external_ds, &via)
        {
            let authentic = actual_from == &registrant_email;
            let header_ok = claimed_from == &registrant_email;
            let accepted = if *verifies_sender {
                authentic
            } else if *accepts_foreign_sender {
                true
            } else {
                header_ok // forgeable!
            };
            if !accepted {
                return Ok(UploadOutcome::EmailNotVerified);
            }
            if !authentic {
                forged_from = Some(claimed_from.clone());
            }
        }

        self.registries
            .get_mut(&tld)
            .expect("all TLDs present")
            .set_ns(sponsor, domain, ns_hosts)
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        if let Some(claimed_from) = forged_from {
            self.events.record(
                self.today,
                Event::ForgedNsAccepted {
                    domain: domain.clone(),
                    claimed_from,
                },
            );
        }
        self.events.record(
            self.today,
            Event::NsChanged {
                domain: domain.clone(),
            },
        );
        Ok(UploadOutcome::Accepted)
    }

    /// The NS hosts a domain's hosting arrangement *should* delegate to.
    /// The takeover census compares this against what the registry serves:
    /// any drift means someone redelegated behind the customer's back.
    pub fn expected_ns_hosts(&self, domain: &Name) -> Option<Vec<Name>> {
        let d = self.domains.get(&domain.to_canonical())?;
        Some(self.ns_hosts_for(domain, d.registrar, &d.hosting))
    }

    /// Moves a domain onto a third-party DNS operator. Like any hosting
    /// change, the previous host's zone (and any DS the previous
    /// arrangement chained to) is torn down.
    pub fn enroll_third_party(
        &mut self,
        domain: &Name,
        operator: OperatorId,
    ) -> Result<(), ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let (sponsor, tld, old_hosting, registrar) =
            (d.sponsor, d.tld, d.hosting.clone(), d.registrar);
        match old_hosting {
            Hosting::Registrar { .. } => {
                let op = self.registrars[registrar.0 as usize].operator;
                self.operators[op.0 as usize].drop_zone(domain);
            }
            Hosting::ThirdParty { operator: old_op } => {
                self.operators[old_op.0 as usize].drop_zone(domain);
            }
            Hosting::Owner => {}
        }
        let ns_hosts = self.operators[operator.0 as usize].ns_hosts.clone();
        let registry = self.registries.get_mut(&tld).expect("all TLDs present");
        registry
            .set_ns(sponsor, domain, &ns_hosts)
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        registry
            .remove_ds(sponsor, domain)
            .map_err(|e| ActionError::Registry(e.to_string()))?;
        let d = self.domains.get_mut(&key).expect("checked");
        d.hosting = Hosting::ThirdParty { operator };
        d.keys = None;
        Ok(())
    }

    /// The third-party operator enables DNSSEC for a hosted domain and
    /// hands the DS back to the owner (it cannot upload it itself).
    pub fn third_party_enable_dnssec(&mut self, domain: &Name) -> Result<DsRdata, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let Hosting::ThirdParty { operator } = d.hosting else {
            return Err(ActionError::WrongHosting);
        };
        let tp = self
            .third_parties
            .iter()
            .find(|t| t.operator == operator)
            .ok_or(ActionError::DnssecUnsupported)?;
        match tp.dnssec_launch {
            Some(launch) if launch <= self.today => {}
            _ => return Err(ActionError::DnssecUnsupported),
        }
        let keys = self.pool_keys_salted(domain, 2);
        let signer = self.signer_config();
        self.operators[operator.0 as usize].host_signed(domain, &keys, &signer);
        self.bump_zone_generation(domain);
        let ds = keys.ds(DigestType::Sha256);
        self.domains.get_mut(&key).expect("checked").keys = Some(keys);
        self.events.record(
            self.today,
            Event::Signed {
                domain: domain.clone(),
            },
        );
        Ok(ds)
    }

    // -------------------------------------------------------------- tick --

    /// Advances one day: apply milestones, drain mass-sign queues, run
    /// population adoption, renewals, audits, and CDS scans.
    pub fn tick(&mut self) {
        self.today = self.today.plus_days(1);
        // Keep the fault plane's clock in step so flap schedules follow
        // simulation time.
        self.network.faults().set_day(self.today.0);
        self.apply_milestones();
        self.drain_mass_sign();
        self.population_adoption();
        self.third_party_adoption();
        self.process_renewals();
        self.drive_rollovers();
        self.drive_anchor_roll();
        if self.today.days_since(self.config.start).is_multiple_of(self.config.audit_interval_days.max(1)) {
            self.run_audits();
        }
        self.run_cds_scans();
    }

    /// Advances until `date` (inclusive of its tick).
    pub fn advance_to(&mut self, date: SimDate) {
        while self.today < date {
            self.tick();
        }
    }

    fn apply_milestones(&mut self) {
        let today = self.today;
        for idx in 0..self.registrars.len() {
            let due: Vec<PolicyChange> = self.registrars[idx]
                .milestones
                .iter()
                .filter(|m| m.on == today)
                .map(|m| m.change.clone())
                .collect();
            for change in due {
                self.apply_change(RegistrarId(idx as u32), change);
            }
        }
    }

    fn apply_change(&mut self, id: RegistrarId, change: PolicyChange) {
        match change {
            PolicyChange::SetOperatorDnssec(p) => {
                self.registrars[id.0 as usize].policy.operator_dnssec = p;
            }
            PolicyChange::SetExternalDs(p) => {
                self.registrars[id.0 as usize].policy.external_ds = p;
            }
            PolicyChange::SetPublishesDs(tld, v) => {
                if let Some(tp) = self.registrars[id.0 as usize].policy.tlds.get_mut(&tld) {
                    tp.publishes_ds = v;
                }
            }
            PolicyChange::SetOptInHazard(h) => {
                self.registrars[id.0 as usize].daily_optin_hazard = h;
            }
            PolicyChange::SwitchPartner {
                tld,
                new_partner,
                migrate_at_renewal,
            } => {
                if let Some(partner) = self.registrar_by_name(&new_partner) {
                    if let Some(tp) = self.registrars[id.0 as usize].policy.tlds.get_mut(&tld) {
                        tp.role = TldRole::ResellerVia(new_partner);
                        tp.publishes_ds = true;
                    }
                    if migrate_at_renewal {
                        for d in self.domains.values_mut() {
                            if d.registrar == id && d.tld == tld && d.sponsor != partner {
                                d.pending_partner_migration = true;
                            }
                        }
                    }
                }
            }
            PolicyChange::MassSignHosted { tlds, over_days } => {
                let targets: Vec<Name> = self
                    .domains
                    .values()
                    .filter(|d| {
                        d.registrar == id
                            && tlds.contains(&d.tld)
                            && matches!(d.hosting, Hosting::Registrar { .. })
                            && d.keys.is_none()
                    })
                    .map(|d| d.name.clone())
                    .collect();
                let per_day = targets.len().div_ceil(over_days.max(1) as usize).max(1);
                self.mass_sign_queue.push(MassSignTask {
                    registrar: id,
                    remaining: targets,
                    per_day,
                });
            }
        }
    }

    fn drain_mass_sign(&mut self) {
        let mut queue = std::mem::take(&mut self.mass_sign_queue);
        for task in &mut queue {
            let take = task.per_day.min(task.remaining.len());
            let batch: Vec<Name> = task.remaining.drain(..take).collect();
            for domain in batch {
                // Domain may have changed hosting since the milestone.
                if self
                    .domains
                    .get(&domain.to_canonical())
                    .map(|d| d.registrar == task.registrar && d.keys.is_none())
                    .unwrap_or(false)
                {
                    let _ = self.sign_hosted(&domain);
                }
            }
        }
        queue.retain(|t| !t.remaining.is_empty());
        self.mass_sign_queue = queue;
    }

    fn population_adoption(&mut self) {
        // Collect candidates (immutable pass), then roll and sign.
        let candidates: Vec<(Name, f64)> = self
            .domains
            .values()
            .filter(|d| d.keys.is_none() && matches!(d.hosting, Hosting::Registrar { .. }))
            .filter_map(|d| {
                let registrar = &self.registrars[d.registrar.0 as usize];
                let hazard = registrar.daily_optin_hazard;
                (hazard > 0.0 && registrar.policy.operator_dnssec.supported())
                    .then(|| (d.name.clone(), hazard))
            })
            .collect();
        for (name, hazard) in candidates {
            if self.rng.random::<f64>() < hazard {
                let _ = self.sign_hosted(&name);
            }
        }
    }

    fn third_party_adoption(&mut self) {
        let profiles: Vec<(OperatorId, SimDate, f64, f64)> = self
            .third_parties
            .iter()
            .filter_map(|tp| {
                tp.dnssec_launch
                    .map(|l| (tp.operator, l, tp.daily_optin_hazard, tp.relay_success))
            })
            .collect();
        for (op, launch, hazard, relay) in profiles {
            if self.today < launch || hazard <= 0.0 {
                continue;
            }
            let candidates: Vec<Name> = self
                .domains
                .values()
                .filter(|d| d.keys.is_none() && d.hosting == (Hosting::ThirdParty { operator: op }))
                .map(|d| d.name.clone())
                .collect();
            for domain in candidates {
                if self.rng.random::<f64>() >= hazard {
                    continue;
                }
                let Ok(ds) = self.third_party_enable_dnssec(&domain) else {
                    continue;
                };
                // The owner must relay the DS to the registrar; 40% never do.
                if self.rng.random::<f64>() < relay {
                    let (sponsor, tld) = {
                        let d = &self.domains[&domain.to_canonical()];
                        (d.sponsor, d.tld)
                    };
                    let _ = self
                        .registries
                        .get_mut(&tld)
                        .expect("all TLDs present")
                        .set_ds(sponsor, &domain, &[ds]);
                    self.events.record(
                        self.today,
                        Event::DsPublished {
                            domain: domain.clone(),
                        },
                    );
                } else {
                    self.events
                        .record(self.today, Event::RelayDropped { domain });
                }
            }
        }
    }

    fn process_renewals(&mut self) {
        let today = self.today;
        let due: Vec<Name> = self
            .domains
            .values()
            .filter(|d| d.expires == today)
            .map(|d| d.name.clone())
            .collect();
        for name in due {
            let key = name.to_canonical();
            // Renew for another year.
            {
                let d = self.domains.get_mut(&key).expect("due domain exists");
                d.expires = today.plus_days(365);
            }
            let (registrar, tld, migrate, old_sponsor) = {
                let d = &self.domains[&key];
                (d.registrar, d.tld, d.pending_partner_migration, d.sponsor)
            };
            if !migrate {
                continue;
            }
            // Resolve the (new) sponsor and transfer at the registry.
            let Ok(new_sponsor) = self.resolve_sponsor(registrar, tld) else {
                continue;
            };
            if new_sponsor != old_sponsor {
                let transferred = self
                    .registries
                    .get_mut(&tld)
                    .expect("all TLDs present")
                    .transfer(old_sponsor, new_sponsor, &name)
                    .is_ok();
                if !transferred {
                    continue;
                }
                let d = self.domains.get_mut(&key).expect("due domain exists");
                d.sponsor = new_sponsor;
                d.pending_partner_migration = false;
                self.events.record(
                    today,
                    Event::PartnerMigrated {
                        domain: name.clone(),
                        new_sponsor,
                    },
                );
                // With a DNSSEC-capable partner, the reseller can now sign
                // hosted domains and publish DS (including for domains it
                // had already signed but could not complete).
                let d = &self.domains[&key];
                if matches!(d.hosting, Hosting::Registrar { .. }) {
                    let policy = &self.registrars[registrar.0 as usize].policy;
                    if policy.operator_dnssec.supported() && policy.tld(tld).publishes_ds {
                        let _ = self.sign_hosted(&name);
                    }
                }
            }
        }
    }

    fn run_audits(&mut self) {
        let now = self.today.epoch_seconds();
        for tld in ALL_TLDS {
            if tld.incentive().is_none() {
                continue;
            }
            let audited: Vec<(Name, bool)> = {
                let registry = &self.registries[&tld];
                registry
                    .delegations()
                    .into_iter()
                    .filter(|d| !registry.ds_of(d).is_empty())
                    .map(|d| {
                        let obs = self.observation_of(&d);
                        let passed = classify(&d, &obs, now) == DeploymentStatus::FullyDeployed;
                        (d, passed)
                    })
                    .collect()
            };
            let registry = self.registries.get_mut(&tld).expect("all TLDs present");
            for (domain, passed) in audited {
                registry.record_audit(&domain, passed);
            }
        }
    }

    fn run_cds_scans(&mut self) {
        // Only registries with CDS support scan (an extension experiment;
        // none of the five paper TLDs had it in-window).
        let now = self.today.epoch_seconds();
        let scans: Vec<(Tld, Name, Vec<DsRdata>)> = self
            .registries
            .iter()
            .filter(|(_, r)| r.supports_cds)
            .flat_map(|(tld, registry)| {
                registry
                    .delegations()
                    .into_iter()
                    .filter_map(|domain| {
                        let action = self.scan_child_cds(&domain, registry, now)?;
                        Some((*tld, domain, action))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (tld, domain, ds_set) in scans {
            let sponsor = self.registries[&tld].sponsor_of(&domain);
            if let Some(sponsor) = sponsor {
                let _ = self
                    .registries
                    .get_mut(&tld)
                    .expect("all TLDs present")
                    .set_ds(sponsor, &domain, &ds_set);
                self.events.record(self.today, Event::CdsApplied { domain });
            }
        }
        self.run_cds_bootstrap(now);
    }

    /// RFC 8078 §3 "accept after delay": a DS-less child that has stably
    /// published a self-consistent CDS for the configured delay gets its
    /// DS installed without any registrar involvement — healing exactly
    /// the partial deployments the paper laments.
    fn run_cds_bootstrap(&mut self, now: u32) {
        let candidates: Vec<(Tld, Name, u32)> = self
            .registries
            .iter()
            .filter_map(|(tld, r)| r.cds_bootstrap_delay_days.map(|d| (*tld, d)))
            .flat_map(|(tld, delay)| {
                self.registries[&tld]
                    .delegations()
                    .into_iter()
                    .filter(|d| self.registries[&tld].ds_of(d).is_empty())
                    .map(move |d| (tld, d, delay))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut to_install: Vec<(Tld, Name, Vec<DsRdata>)> = Vec::new();
        for (tld, domain, delay) in candidates {
            match self.consistent_cds_of(&domain, now) {
                Some(ds_set) => {
                    let first = *self
                        .cds_first_seen
                        .entry(domain.to_canonical())
                        .or_insert(self.today);
                    if self.today.days_since(first) >= delay {
                        to_install.push((tld, domain, ds_set));
                    }
                }
                None => {
                    self.cds_first_seen.remove(&domain.to_canonical());
                }
            }
        }
        for (tld, domain, ds_set) in to_install {
            let Some(sponsor) = self.registries[&tld].sponsor_of(&domain) else {
                continue;
            };
            let _ = self
                .registries
                .get_mut(&tld)
                .expect("all TLDs present")
                .set_ds(sponsor, &domain, &ds_set);
            self.cds_first_seen.remove(&domain.to_canonical());
            self.events.record(self.today, Event::CdsApplied { domain });
        }
    }

    /// The CDS set of `domain` if it is published and correctly signed by
    /// the zone's own served DNSKEYs (the RFC 8078 self-consistency bar).
    fn consistent_cds_of(&self, domain: &Name, now: u32) -> Option<Vec<DsRdata>> {
        let resp = self.query_domain(domain, RrType::Cds)?;
        let cds_records: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rtype() == RrType::Cds)
            .cloned()
            .collect();
        if cds_records.is_empty() {
            return None;
        }
        let cds_rrset = RrSet::new(cds_records).ok()?;
        let rrsigs: Vec<_> = resp
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        let served = self.served_dnskeys(domain);
        let scan = dsec_dnssec::CdsScan {
            cds: Some(cds_rrset),
            cdnskey: None,
            rrsigs,
            trusted_keys: served,
        };
        match dsec_dnssec::process_scan(domain, &scan, now) {
            Ok(dsec_dnssec::CdsAction::ReplaceDs(ds)) => Some(ds),
            _ => None,
        }
    }

    /// Scans one child for an authenticated CDS change; returns the new DS
    /// set if one should be applied.
    fn scan_child_cds(
        &self,
        domain: &Name,
        registry: &Registry,
        now: u32,
    ) -> Option<Vec<DsRdata>> {
        let current_ds = registry.ds_of(domain);
        if current_ds.is_empty() {
            return None; // RFC 7344 trust bootstrap from current chain only
        }
        let resp = self.query_domain(domain, RrType::Cds)?;
        let cds_records: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rtype() == RrType::Cds)
            .cloned()
            .collect();
        if cds_records.is_empty() {
            return None;
        }
        let cds_rrset = RrSet::new(cds_records).ok()?;
        let rrsigs: Vec<_> = resp
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        // Trusted keys: DNSKEYs chained from the current DS.
        let obs = self.observation_of(domain);
        let dnskey_rrset = obs.dnskey_rrset?;
        let trusted = dsec_dnssec::authenticate_dnskeys(
            domain,
            &dnskey_rrset,
            &obs.dnskey_rrsigs,
            &current_ds,
            now,
        )
        .ok()?;
        let scan = dsec_dnssec::CdsScan {
            cds: Some(cds_rrset),
            cdnskey: None,
            rrsigs,
            trusted_keys: trusted,
        };
        match dsec_dnssec::process_scan(domain, &scan, now) {
            Ok(dsec_dnssec::CdsAction::ReplaceDs(ds)) => Some(ds),
            Ok(dsec_dnssec::CdsAction::DeleteDs) => Some(Vec::new()),
            _ => None,
        }
    }

    // ----------------------------------------------------- observations --

    /// Builds the paper-style observation of one domain: served DNSKEY
    /// RRset + RRSIGs (via a real DO-bit query to the domain's
    /// nameservers) and the DS set in the registry.
    pub fn observation_of(&self, domain: &Name) -> Observation {
        self.observe_domain(domain, 1).0
    }

    /// Sends one DNSSEC-OK query to the domain's delegated nameservers.
    pub fn query_domain(&self, domain: &Name, rtype: RrType) -> Option<Message> {
        let tld = Tld::of_domain(domain)?;
        let ns_hosts = self.registries[&tld].ns_of(domain);
        let query = Message::query(0, domain.clone(), rtype, true);
        ns_hosts
            .iter()
            .find_map(|ns| self.network.query(ns, &query))
    }

    /// Like [`World::query_domain`] but fault-aware: rotates across every
    /// delegated nameserver, retries up to `rounds` full rotations on
    /// timeouts, and falls back to TCP on truncation. With the fault
    /// plane disabled the first server always answers, so the result is
    /// identical to [`World::query_domain`].
    pub fn query_domain_robust(&self, domain: &Name, rtype: RrType, rounds: u32) -> DomainQuery {
        let Some(tld) = Tld::of_domain(domain) else {
            return DomainQuery::NoServers;
        };
        let ns_hosts = self.registries[&tld].ns_of(domain);
        if ns_hosts.is_empty() {
            return DomainQuery::NoServers;
        }
        let query = Message::query(0, domain.clone(), rtype, true);
        let mut retried = false;
        let mut saw_servfail = false;
        let mut registered_any = false;
        for _ in 0..rounds.max(1) {
            for ns in &ns_hosts {
                match self.network.query_udp(ns, &query, SCAN_DEADLINE_MS) {
                    QueryOutcome::Answered { response, .. } => {
                        registered_any = true;
                        if response.flags.truncated {
                            retried = true;
                            if let QueryOutcome::Answered { response, .. } =
                                self.network.query_tcp(ns, &query)
                            {
                                return DomainQuery::Answered { response, retried };
                            }
                            continue;
                        }
                        // An injected SERVFAIL carries no zone data; keep
                        // rotating rather than mistake it for "unsigned".
                        if response.rcode == dsec_wire::Rcode::ServFail {
                            saw_servfail = true;
                            retried = true;
                            continue;
                        }
                        return DomainQuery::Answered { response, retried };
                    }
                    QueryOutcome::Timeout => {
                        registered_any = true;
                        retried = true;
                    }
                    QueryOutcome::Unreachable => {}
                }
            }
        }
        if saw_servfail {
            DomainQuery::Indeterminate
        } else if registered_any {
            DomainQuery::Unreachable
        } else {
            // No delegated host is even registered: a configuration gap in
            // the simulated world, not a transient network failure.
            DomainQuery::NoServers
        }
    }

    /// Fault-aware observation: [`World::observation_of`] plus a verdict
    /// on how trustworthy the observation is. `Unreachable` and
    /// `Indeterminate` observations carry the registry-side DS set but no
    /// served DNSKEY data; callers should record the degradation instead
    /// of classifying.
    pub fn observe_domain(&self, domain: &Name, rounds: u32) -> (Observation, ObservationQuality) {
        let mut obs = Observation::default();
        if let Some(tld) = Tld::of_domain(domain) {
            obs.ds_set = self.registries[&tld].ds_of(domain);
        }
        let (response, quality) = match self.query_domain_robust(domain, RrType::Dnskey, rounds) {
            DomainQuery::Answered { response, retried } => (
                Some(response),
                if retried {
                    ObservationQuality::Degraded
                } else {
                    ObservationQuality::Clean
                },
            ),
            DomainQuery::Indeterminate => (None, ObservationQuality::Indeterminate),
            DomainQuery::Unreachable => (None, ObservationQuality::Unreachable),
            // Nothing to query: the observation is complete as far as the
            // world can answer, matching the fault-oblivious scan.
            DomainQuery::NoServers => (None, ObservationQuality::Clean),
        };
        if let Some(resp) = response {
            let keys: Vec<Record> = resp
                .answers
                .iter()
                .filter(|r| r.rtype() == RrType::Dnskey)
                .cloned()
                .collect();
            if !keys.is_empty() {
                obs.dnskey_rrset = RrSet::new(keys).ok();
                obs.dnskey_rrsigs = resp
                    .answers
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
                        _ => None,
                    })
                    .collect();
            }
        }
        (obs, quality)
    }

    /// The network's fault-injection plane (chaos-campaign control).
    pub fn fault_plane(&self) -> &FaultPlane {
        self.network.faults()
    }

    /// Marks the start of a scan epoch (one snapshot of a campaign):
    /// prunes the fault plane's per-triple attempt counters so multi-day
    /// campaigns don't grow them without bound. Called by the scanner
    /// before each snapshot.
    pub fn begin_scan_epoch(&self) {
        self.network.faults().begin_epoch();
    }

    /// Enables or disables the authorities' wire-response cache (on by
    /// default; see `dsec_authserver::Authority::set_response_cache`).
    /// With caching off, answers are recomputed per query — used to prove
    /// cached and uncached runs are byte-identical.
    pub fn set_response_cache(&self, enabled: bool) {
        self.network.set_response_cache(enabled);
    }

    /// Caps every authority's wire-response cache at `entries` (see
    /// `dsec_authserver::Authority::set_response_cache_capacity`).
    pub fn set_response_cache_capacity(&self, entries: usize) {
        self.network.set_response_cache_capacity(entries);
    }

    /// Publishes a CDS record (for the zone's current KSK) in a signed
    /// domain's zone — what RFC 7344 asks operators to do so the parent
    /// can pick the DS up in-band.
    pub fn publish_cds_for(&mut self, domain: &Name) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        let keys = d.keys.clone().ok_or(ActionError::DnssecUnsupported)?;
        let ds = keys.ds(DigestType::Sha256);
        self.publish_cds_record(domain, &keys, ds)
    }

    /// Publishes CDS records for every signed, registrar-hosted domain of
    /// `registrar` — turning its partial deployments into bootstrap
    /// candidates once a registry enables RFC 8078 scanning.
    pub fn enable_cds_publication(&mut self, registrar: RegistrarId) -> usize {
        let targets: Vec<Name> = self
            .domains
            .values()
            .filter(|d| d.registrar == registrar && d.keys.is_some())
            .map(|d| d.name.clone())
            .collect();
        let mut published = 0;
        for domain in targets {
            if self.publish_cds_for(&domain).is_ok() {
                published += 1;
            }
        }
        published
    }

    /// Phase 1 of a proper key rollover: generate new keys, publish a CDS
    /// for them **signed by the still-chained old keys**, and remember the
    /// new keys. The chain stays valid throughout. Errors with
    /// [`ActionError::RolloverInProgress`] if a rollover (one-shot or
    /// scheduled) is already pending — silently regenerating keys here
    /// would orphan the CDS already served.
    pub fn prepare_rollover(&mut self, domain: &Name) -> Result<DsRdata, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let old_keys = d.keys.clone().ok_or(ActionError::DnssecUnsupported)?;
        if self.rollover_in_flight(&key) {
            return Err(ActionError::RolloverInProgress);
        }
        let new_keys = self.keys_differing_from(domain, old_keys.ksk_tag());
        let new_ds = new_keys.ds(DigestType::Sha256);
        self.publish_cds_record(domain, &old_keys, new_ds.clone())?;
        self.pending_rollover.insert(key.clone(), new_keys);
        self.mark_rollover_slot(&key, ROLLOVER_SLOT_ONE_SHOT);
        self.events.record(
            self.today,
            // The one-shot CDS flow is a KSK-family transition.
            Event::RolloverPrepared {
                domain: domain.clone(),
                style: RolloverStyle::DoubleSignatureKsk,
            },
        );
        Ok(new_ds)
    }

    /// Phase 2: once the parent's DS points at the new keys, re-sign the
    /// zone with them. Completing before the DS update makes the domain
    /// bogus — the rollover failure mode.
    pub fn complete_rollover(&mut self, domain: &Name) -> Result<(), ActionError> {
        let key = domain.to_canonical();
        let new_keys = self
            .pending_rollover
            .remove(&key)
            .ok_or(ActionError::NoPendingRollover)?;
        self.clear_rollover_slot(&key);
        self.resign_with(domain, &new_keys)?;
        self.domains.get_mut(&key).expect("checked").keys = Some(new_keys);
        self.events.record(
            self.today,
            Event::RolloverCompleted {
                domain: domain.clone(),
                style: RolloverStyle::DoubleSignatureKsk,
            },
        );
        Ok(())
    }

    /// An abrupt (incorrect) rollover: replace the zone keys outright
    /// without updating the parent DS. Validating resolvers SERVFAIL
    /// until someone fixes the DS.
    pub fn roll_keys_abrupt(&mut self, domain: &Name) -> Result<DsRdata, ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let current = d.keys.clone().ok_or(ActionError::DnssecUnsupported)?;
        let new_keys = self.keys_differing_from(domain, current.ksk_tag());
        let new_ds = new_keys.ds(DigestType::Sha256);
        self.resign_with(domain, &new_keys)?;
        self.domains.get_mut(&key).expect("checked").keys = Some(new_keys);
        self.events.record(
            self.today,
            Event::RolloverAbrupt {
                domain: domain.clone(),
            },
        );
        Ok(new_ds)
    }

    // --------------------------------------------- scheduled rollovers --

    /// Schedules a full rollover lifecycle for `domain`, to be driven by
    /// the daily tick. The incoming key generation is fixed now (so its
    /// DS is known in advance); phase transitions happen as the campaign
    /// clock crosses the plan's dates. Dates already in the past are
    /// caught up on the next tick, in phase order.
    pub fn schedule_rollover(
        &mut self,
        domain: &Name,
        plan: RolloverPlan,
    ) -> Result<(), ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let old_keys = d.keys.clone().ok_or(ActionError::DnssecUnsupported)?;
        if self.rollover_in_flight(&key) {
            return Err(ActionError::RolloverInProgress);
        }
        let new_keys = match plan.style {
            RolloverStyle::DoubleSignatureKsk => {
                self.keys_differing_from(domain, old_keys.ksk_tag())
            }
            RolloverStyle::Algorithm => {
                // A genuinely different signing algorithm; the pool is
                // single-algorithm, so generate a fresh pair (rollover
                // populations are small).
                let next = if old_keys.ksk.algorithm == Algorithm::RsaSha512 {
                    Algorithm::RsaSha256
                } else {
                    Algorithm::RsaSha512
                };
                ZoneKeys::generate_default(&mut self.rng, domain.clone(), next)
                    .map_err(|e| ActionError::Registry(e.to_string()))?
            }
            RolloverStyle::PrePublishZsk => {
                // Same KSK (the DS never moves); only the ZSK changes.
                let alt = self.keys_differing_from(domain, old_keys.ksk_tag());
                ZoneKeys {
                    zone: domain.clone(),
                    ksk: old_keys.ksk.clone(),
                    zsk: alt.zsk,
                }
            }
        };
        self.rollovers.insert(
            key.clone(),
            RolloverState {
                plan,
                phase: RolloverPhase::Scheduled,
                ds_swapped: false,
                stalled: false,
                old_keys,
                new_keys,
                signed_until: None,
                expiry_noted: false,
            },
        );
        self.mark_rollover_slot(&key, ROLLOVER_SLOT_SCHEDULED);
        Ok(())
    }

    // The columnar rollover-slot values mirroring the two state maps.
    // `NO_ROLLOVER_SLOT` (the column default) means "no rollover in
    // flight"; the probe below is the O(1) guard both entry points use
    // instead of two `BTreeMap` lookups.

    /// O(1) check against the [`DomainStore`] rollover-slot column:
    /// is any rollover (one-shot CDS or scheduled lifecycle) already in
    /// flight for `domain`?
    fn rollover_in_flight(&self, domain: &Name) -> bool {
        match self.domains.row_of(domain) {
            Some(row) => self.domains.rollover_slot(row) != NO_ROLLOVER_SLOT,
            // Unregistered names can't be mid-rollover.
            None => false,
        }
    }

    fn mark_rollover_slot(&mut self, domain: &Name, slot: u32) {
        if let Some(row) = self.domains.row_of(domain) {
            self.domains.set_rollover_slot(row, slot);
        }
    }

    fn clear_rollover_slot(&mut self, domain: &Name) {
        if let Some(row) = self.domains.row_of(domain) {
            self.domains.set_rollover_slot(row, NO_ROLLOVER_SLOT);
        }
    }

    /// Freezes the operator side of a scheduled rollover (the operator is
    /// down, distracted, or out of business): no further phase work and
    /// no signature refresh until [`World::resume_rollover`]. With
    /// bounded signature validity, the served RRSIGs then expire for
    /// real. The registrar's DS leg is *not* frozen — it is a different
    /// organisation working its own queue.
    pub fn stall_rollover(&mut self, domain: &Name) -> Result<(), ActionError> {
        let state = self
            .rollovers
            .get_mut(&domain.to_canonical())
            .ok_or(ActionError::NoPendingRollover)?;
        state.stalled = true;
        Ok(())
    }

    /// Unfreezes a stalled rollover; the driver catches up on the next
    /// tick.
    pub fn resume_rollover(&mut self, domain: &Name) -> Result<(), ActionError> {
        let state = self
            .rollovers
            .get_mut(&domain.to_canonical())
            .ok_or(ActionError::NoPendingRollover)?;
        state.stalled = false;
        Ok(())
    }

    /// The in-flight rollover state of `domain`, if any. Completed
    /// rollovers are removed from the map (their history lives in the
    /// event log).
    pub fn rollover_state(&self, domain: &Name) -> Option<&RolloverState> {
        self.rollovers.get(&domain.to_canonical())
    }

    /// All in-flight scheduled rollovers.
    pub fn active_rollovers(&self) -> impl Iterator<Item = (&Name, &RolloverState)> {
        self.rollovers.iter()
    }

    /// The transitional signing set a plan serves between `start` and
    /// completion.
    fn transitional_set(plan: &RolloverPlan, old: &ZoneKeys, new: &ZoneKeys) -> SigningSet {
        match plan.style {
            RolloverStyle::DoubleSignatureKsk | RolloverStyle::Algorithm => {
                SigningSet::double(old, new).expect("same zone")
            }
            RolloverStyle::PrePublishZsk => {
                SigningSet::prepublish(old, new).expect("same zone")
            }
        }
    }

    /// Signer parameters for a rollover phase: bounded validity when the
    /// plan asks for it (so a stalled operator's signatures genuinely
    /// lapse), the world default otherwise.
    fn rollover_signer(&self, plan: &RolloverPlan) -> SignerConfig {
        match plan.signature_validity_days {
            // Valid from yesterday, for `v` days from today.
            Some(v) => SignerConfig::valid_from(
                self.today.epoch_seconds().saturating_sub(86_400),
                v.saturating_add(1).saturating_mul(86_400),
            ),
            None => self.signer_config(),
        }
    }

    /// Advances every scheduled rollover whose dates the clock has
    /// crossed. Called from [`World::tick`].
    fn drive_rollovers(&mut self) {
        if self.rollovers.is_empty() {
            return;
        }
        let due: Vec<Name> = self.rollovers.keys().cloned().collect();
        for domain in due {
            self.drive_one_rollover(&domain);
        }
    }

    fn drive_one_rollover(&mut self, domain: &Name) {
        let today = self.today;
        let Some(state) = self.rollovers.get(domain) else {
            return;
        };
        let plan = state.plan.clone();
        let stalled = state.stalled;
        let old = state.old_keys.clone();
        let new = state.new_keys.clone();

        // Operator leg 1: start serving the transitional set.
        if !stalled && state.phase == RolloverPhase::Scheduled && today >= plan.start {
            let set = Self::transitional_set(&plan, &old, &new);
            let signer = self.rollover_signer(&plan);
            if self.resign_with_set(domain, &set, &signer).is_ok() {
                let st = self.rollovers.get_mut(domain).expect("still present");
                st.phase = if st.ds_swapped {
                    RolloverPhase::DsSwapped
                } else {
                    RolloverPhase::Prepared
                };
                st.signed_until = plan.signature_validity_days.map(|_| signer.expiration);
                self.events.record(
                    today,
                    Event::RolloverPrepared {
                        domain: domain.clone(),
                        style: plan.style,
                    },
                );
            }
        }

        // Operator leg 1b (pre-publish ZSK only): on the scheduled swap
        // day the *signer* switches to the incoming ZSK while the old one
        // stays published for its retirement interval. No DS involved.
        if !stalled
            && plan.style == RolloverStyle::PrePublishZsk
            && self.rollovers.get(domain).map(|s| s.phase) == Some(RolloverPhase::Prepared)
            && today >= plan.scheduled_swap()
        {
            let set = SigningSet::prepublish(&new, &old).expect("same zone");
            let signer = self.rollover_signer(&plan);
            if self.resign_with_set(domain, &set, &signer).is_ok() {
                let st = self.rollovers.get_mut(domain).expect("still present");
                st.phase = RolloverPhase::DsSwapped;
                st.signed_until = plan.signature_validity_days.map(|_| signer.expiration);
            }
        }

        // Registrar/registry leg: the DS moves on *its* schedule — early,
        // late, never — independent of the operator (even one that is
        // stalled mid-outage).
        if plan.style.changes_ds() && !self.rollovers.get(domain).map(|s| s.ds_swapped).unwrap_or(true) {
            if let Some(swap_day) = plan.actual_swap() {
                if today >= swap_day {
                    let (sponsor, tld) = {
                        let d = self.domains.get(&domain.to_canonical()).expect("rolling domain exists");
                        (d.sponsor, d.tld)
                    };
                    let ds = new.ds(DigestType::Sha256);
                    match self
                        .registries
                        .get_mut(&tld)
                        .expect("all TLDs present")
                        .set_ds(sponsor, domain, &[ds])
                    {
                        Ok(()) => {
                            let st = self.rollovers.get_mut(domain).expect("still present");
                            st.ds_swapped = true;
                            let operator_done = st.phase == RolloverPhase::Completed;
                            if st.phase == RolloverPhase::Prepared {
                                st.phase = RolloverPhase::DsSwapped;
                            }
                            self.events.record(
                                today,
                                Event::RolloverDsSwapped {
                                    domain: domain.clone(),
                                    on_schedule: plan.ds_timing == DsTiming::OnSchedule,
                                },
                            );
                            if operator_done {
                                // The operator finished long ago; this late
                                // DS landing was the last outstanding leg.
                                self.rollovers.remove(domain);
                                self.clear_rollover_slot(domain);
                            }
                        }
                        Err(e) => self.events.record(
                            today,
                            Event::DsRejected {
                                domain: domain.clone(),
                                reason: e.to_string(),
                            },
                        ),
                    }
                }
            }
        }

        // Operator leg 2: withdraw old material, finish. Runs on schedule
        // whether or not the DS ever moved — that is exactly how the
        // "DS too late / never" bogus windows open.
        let phase = self.rollovers.get(domain).map(|s| s.phase);
        if !stalled
            && matches!(phase, Some(RolloverPhase::Prepared) | Some(RolloverPhase::DsSwapped))
            && today >= plan.completion()
        {
            if self.resign_with(domain, &new).is_ok() {
                self.domains
                    .get_mut(&domain.to_canonical())
                    .expect("rolling domain exists")
                    .keys = Some(new);
                let st = self.rollovers.get_mut(domain).expect("still present");
                let ds_pending =
                    plan.style.changes_ds() && !st.ds_swapped && plan.actual_swap().is_some();
                if ds_pending {
                    // The operator is done but the registrar still owes a
                    // (late) DS swap: keep the state so the registrar leg
                    // drives it — that landing is what closes the bogus
                    // window.
                    st.phase = RolloverPhase::Completed;
                    st.signed_until = None;
                } else {
                    self.rollovers.remove(domain);
                    self.clear_rollover_slot(domain);
                }
                self.events.record(
                    today,
                    Event::RolloverCompleted {
                        domain: domain.clone(),
                        style: plan.style,
                    },
                );
            }
            return;
        }

        // Signature upkeep under bounded validity: a live operator
        // refreshes a day before expiry; a stalled one lets the RRSIGs
        // lapse — and the lapse is logged once, when it happens.
        let Some(state) = self.rollovers.get(domain) else {
            return;
        };
        if let Some(until) = state.signed_until {
            let now = today.epoch_seconds();
            if !state.stalled
                && matches!(
                    state.phase,
                    RolloverPhase::Prepared | RolloverPhase::DsSwapped
                )
                && now.saturating_add(86_400) >= until
            {
                let set = if state.phase == RolloverPhase::DsSwapped
                    && plan.style == RolloverStyle::PrePublishZsk
                {
                    SigningSet::prepublish(&new, &old).expect("same zone")
                } else {
                    Self::transitional_set(&plan, &old, &new)
                };
                let signer = self.rollover_signer(&plan);
                if self.resign_with_set(domain, &set, &signer).is_ok() {
                    let st = self.rollovers.get_mut(domain).expect("still present");
                    st.signed_until = Some(signer.expiration);
                    st.expiry_noted = false;
                }
            } else if now >= until && !state.expiry_noted {
                self.rollovers.get_mut(domain).expect("still present").expiry_noted = true;
                self.events.record(
                    today,
                    Event::SignatureExpired {
                        domain: domain.clone(),
                    },
                );
            }
        }
    }

    /// Re-signs a domain's zone with `keys` wherever it is hosted.
    fn resign_with(&mut self, domain: &Name, keys: &ZoneKeys) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        let signer = self.signer_config();
        match d.hosting.clone() {
            Hosting::Registrar { .. } => {
                let op = self.registrars[d.registrar.0 as usize].operator;
                self.operators[op.0 as usize].host_signed(domain, keys, &signer);
            }
            Hosting::ThirdParty { operator } => {
                self.operators[operator.0 as usize].host_signed(domain, keys, &signer);
            }
            Hosting::Owner => {
                self.host_owner_zone(domain, Some(keys));
                // host_owner_zone already bumped the generation.
                return Ok(());
            }
        }
        self.bump_zone_generation(domain);
        Ok(())
    }

    /// Re-signs a domain's zone with an arbitrary [`SigningSet`] and
    /// signer window — the mid-rollover counterpart of
    /// [`World::resign_with`].
    fn resign_with_set(
        &mut self,
        domain: &Name,
        set: &SigningSet,
        signer: &SignerConfig,
    ) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        match d.hosting.clone() {
            Hosting::Registrar { .. } => {
                let op = self.registrars[d.registrar.0 as usize].operator;
                self.operators[op.0 as usize].host_signed_set(domain, set, signer);
            }
            Hosting::ThirdParty { operator } => {
                self.operators[operator.0 as usize].host_signed_set(domain, set, signer);
            }
            Hosting::Owner => {
                let (mut zone, ns_host) = self.owner_zone_skeleton(domain);
                sign_zone_set(&mut zone, set, signer).expect("owner set matches zone");
                self.owner_authority.upsert_zone(zone);
                self.network
                    .register(ns_host, self.owner_authority.clone());
            }
        }
        self.bump_zone_generation(domain);
        Ok(())
    }

    /// Adds a signed CDS record to the domain's served zone.
    fn publish_cds_record(
        &mut self,
        domain: &Name,
        signing_keys: &ZoneKeys,
        ds: DsRdata,
    ) -> Result<(), ActionError> {
        let d = self
            .domains
            .get(&domain.to_canonical())
            .ok_or(ActionError::NoSuchDomain)?;
        let signer = self.signer_config();
        match d.hosting.clone() {
            Hosting::Registrar { .. } => {
                let op = self.registrars[d.registrar.0 as usize].operator;
                self.operators[op.0 as usize].publish_cds(domain, signing_keys, ds, &signer);
            }
            Hosting::ThirdParty { operator } => {
                self.operators[operator.0 as usize].publish_cds(domain, signing_keys, ds, &signer);
            }
            Hosting::Owner => {
                let zone_host = self.owner_authority.clone();
                zone_host.with_zone_mut(domain, |zone| {
                    zone.add(Record::new(domain.clone(), 3600, RData::Cds(ds)))
                        .expect("CDS fits");
                    let rrset = zone.rrset(domain, RrType::Cds).expect("just added");
                    let sig = dsec_dnssec::sign_rrset(
                        &rrset,
                        &signing_keys.zsk,
                        signing_keys.zsk_tag(),
                        domain,
                        &signer,
                    );
                    zone.add(sig).expect("CDS RRSIG fits");
                });
            }
        }
        self.bump_zone_generation(domain);
        Ok(())
    }

    // ------------------------------------------------------------ helpers --

    /// The effective sponsor for `registrar` selling `tld`.
    pub fn resolve_sponsor(
        &self,
        registrar: RegistrarId,
        tld: Tld,
    ) -> Result<RegistrarId, ActionError> {
        match &self.registrars[registrar.0 as usize].policy.tld(tld).role {
            TldRole::Registrar => Ok(registrar),
            TldRole::ResellerVia(partner) => self
                .registrar_by_name(partner)
                .ok_or(ActionError::TldNotSold),
            TldRole::NoSupport => Err(ActionError::TldNotSold),
        }
    }

    fn ns_hosts_for(&self, domain: &Name, registrar: RegistrarId, hosting: &Hosting) -> Vec<Name> {
        match hosting {
            Hosting::Registrar { .. } => {
                let op = self.registrars[registrar.0 as usize].operator;
                self.operators[op.0 as usize].ns_hosts.clone()
            }
            Hosting::Owner => vec![domain.child("ns1").expect("ns1 fits")],
            Hosting::ThirdParty { operator } => {
                self.operators[operator.0 as usize].ns_hosts.clone()
            }
        }
    }

    /// Deterministically picks pool keys for a domain and rebinds them to
    /// the domain's name. `salt` varies per hosting arrangement so a
    /// domain that changes operators gets different key material — as it
    /// would in reality.
    fn pool_keys_salted(&self, domain: &Name, salt: u64) -> ZoneKeys {
        let mut h: u64 = 0xcbf29ce484222325 ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        for b in domain.to_canonical_wire() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let idx = (h % self.key_pool.len() as u64) as usize;
        let mut keys = self.key_pool[idx].clone();
        keys.zone = domain.clone();
        keys
    }

    fn pool_keys_for(&self, domain: &Name) -> ZoneKeys {
        self.pool_keys_salted(domain, 0)
    }

    /// A key pair whose KSK tag differs from `current_tag` (rollovers).
    fn keys_differing_from(&self, domain: &Name, current_tag: u16) -> ZoneKeys {
        let mut keys = self
            .key_pool
            .iter()
            .find(|k| {
                let mut c = (*k).clone();
                c.zone = domain.clone();
                c.ksk_tag() != current_tag
            })
            .unwrap_or(&self.key_pool[0])
            .clone();
        keys.zone = domain.clone();
        keys
    }

    /// A second, different key pair for a domain (for wrong-DS tests).
    pub fn mismatched_keys_for(&self, domain: &Name) -> ZoneKeys {
        let base = self.pool_keys_for(domain);
        let mut keys = self
            .key_pool
            .iter()
            .find(|k| k.ksk_tag() != base.ksk_tag())
            .unwrap_or(&self.key_pool[0])
            .clone();
        keys.zone = domain.clone();
        keys
    }

    /// Signer parameters: valid from yesterday until past the sim end.
    pub fn signer_config(&self) -> SignerConfig {
        SignerConfig {
            inception: self.today.epoch_seconds().saturating_sub(86_400),
            expiration: self.config.end.plus_days(400).epoch_seconds(),
            nsec: true,
            nsec3: None,
            dnskey_ttl: 3600,
        }
    }

    /// Signs a registrar-hosted domain and uploads its DS when the
    /// registrar's per-TLD policy says so.
    pub fn sign_hosted(&mut self, domain: &Name) -> Result<(), ActionError> {
        let key = domain.to_canonical();
        let d = self.domains.get(&key).ok_or(ActionError::NoSuchDomain)?;
        let Hosting::Registrar { .. } = d.hosting else {
            return Err(ActionError::WrongHosting);
        };
        let (registrar, sponsor, tld) = (d.registrar, d.sponsor, d.tld);
        let keys = self.pool_keys_for(domain);
        let signer = self.signer_config();
        let op = self.registrars[registrar.0 as usize].operator;
        self.operators[op.0 as usize].host_signed(domain, &keys, &signer);
        self.bump_zone_generation(domain);
        let ds = keys.ds(DigestType::Sha256);
        self.domains.get_mut(&key).expect("checked").keys = Some(keys);
        self.events.record(
            self.today,
            Event::Signed {
                domain: domain.clone(),
            },
        );
        if self.registrars[registrar.0 as usize]
            .policy
            .tld(tld)
            .publishes_ds
        {
            self.registries
                .get_mut(&tld)
                .expect("all TLDs present")
                .set_ds(sponsor, domain, &[ds])
                .map_err(|e| ActionError::Registry(e.to_string()))?;
            self.events.record(
                self.today,
                Event::DsPublished {
                    domain: domain.clone(),
                },
            );
        }
        Ok(())
    }

    /// The unsigned skeleton of an owner-hosted zone (SOA, NS, www A) and
    /// its nameserver hostname.
    fn owner_zone_skeleton(&self, domain: &Name) -> (Zone, Name) {
        let ns_host = domain.child("ns1").expect("ns1 fits");
        let mut zone = Zone::new(domain.clone());
        zone.add(Record::new(
            domain.clone(),
            3600,
            RData::Soa(SoaRdata {
                mname: ns_host.clone(),
                rname: Name::parse("hostmaster.invalid").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        ))
        .expect("SOA fits");
        zone.add(Record::new(domain.clone(), 3600, RData::Ns(ns_host.clone())))
            .expect("NS fits");
        zone.add(Record::new(
            domain.child("www").expect("www fits"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .expect("A fits");
        (zone, ns_host)
    }

    /// Builds (or re-signs) an owner-hosted zone and registers its
    /// nameserver hostname; returns that hostname.
    fn host_owner_zone(&mut self, domain: &Name, keys: Option<&ZoneKeys>) -> Name {
        let (mut zone, ns_host) = self.owner_zone_skeleton(domain);
        if let Some(keys) = keys {
            let signer = self.signer_config();
            sign_zone(&mut zone, keys, &signer).expect("owner keys match zone");
        }
        self.owner_authority.upsert_zone(zone);
        self.network
            .register(ns_host.clone(), self.owner_authority.clone());
        self.bump_zone_generation(domain);
        ns_host
    }

    /// The DNSKEYs currently served for `domain` by whoever hosts it.
    pub fn served_dnskeys(&self, domain: &Name) -> Vec<dsec_wire::DnskeyRdata> {
        self.query_domain(domain, RrType::Dnskey)
            .map(|resp| {
                resp.answers
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Dnskey(k) => Some(k.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether (policy channel, submission) line up; `Some(validates)`.
    fn channel_matches(&self, channel: &ExternalDs, via: &DsSubmission) -> Option<bool> {
        match (channel, via) {
            (ExternalDs::Web { validates }, DsSubmission::Web) => Some(*validates),
            (ExternalDs::Email { validates, .. }, DsSubmission::Email { .. }) => Some(*validates),
            (ExternalDs::Chat { .. }, DsSubmission::Chat) => Some(false),
            (ExternalDs::Ticket, DsSubmission::Ticket) => Some(false),
            (ExternalDs::FetchDnskey, DsSubmission::FetchDnskey) => Some(true),
            _ => None,
        }
    }

    fn random_other_domain(&mut self, registrar: RegistrarId, not: &Name) -> Option<Name> {
        let candidates: Vec<Name> = self
            .domains
            .values()
            .filter(|d| d.registrar == registrar && &d.name != not)
            .map(|d| d.name.clone())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let idx = self.rng.random_range(0..candidates.len());
        Some(candidates[idx].clone())
    }

    /// A mutable handle to the registry (extension experiments flip CDS
    /// support on).
    pub fn registry_mut(&mut self, tld: Tld) -> &mut Registry {
        self.registries.get_mut(&tld).expect("all TLDs present")
    }

    /// Draws from the world RNG (workload generation shares determinism).
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }
}
