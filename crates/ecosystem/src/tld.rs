//! The five TLDs the paper studies and their registry-level properties.

use dsec_wire::Name;

/// A studied top-level domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tld {
    /// `.com` (gTLD, Verisign).
    Com,
    /// `.net` (gTLD, Verisign).
    Net,
    /// `.org` (gTLD, PIR).
    Org,
    /// `.nl` (ccTLD, SIDN) — DNSSEC discount programme.
    Nl,
    /// `.se` (ccTLD, IIS) — the original DNSSEC discount programme.
    Se,
}

/// All studied TLDs, in the paper's table order.
pub const ALL_TLDS: [Tld; 5] = [Tld::Com, Tld::Net, Tld::Org, Tld::Nl, Tld::Se];

/// A registry's financial incentive for correctly signed domains
/// (§6.3: .nl pays ≈ €0.28/yr, .se paid ≈ 10 SEK/yr, with daily audits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incentive {
    /// Yearly discount per correctly signed domain, US cents.
    pub discount_cents: u32,
    /// Registrars failing validation too often lose the discount
    /// (.nl: at most 14 failures per six months).
    pub max_failures_per_halfyear: u32,
}

impl Tld {
    /// The TLD label as a string.
    pub fn label(self) -> &'static str {
        match self {
            Tld::Com => "com",
            Tld::Net => "net",
            Tld::Org => "org",
            Tld::Nl => "nl",
            Tld::Se => "se",
        }
    }

    /// The TLD zone origin.
    pub fn zone(self) -> Name {
        Name::parse(self.label()).expect("static TLD label parses")
    }

    /// True for country-code TLDs.
    pub fn is_cctld(self) -> bool {
        matches!(self, Tld::Nl | Tld::Se)
    }

    /// The registry's DNSSEC incentive programme, if any.
    pub fn incentive(self) -> Option<Incentive> {
        match self {
            Tld::Nl => Some(Incentive {
                discount_cents: 30, // ≈ €0.28
                max_failures_per_halfyear: 14,
            }),
            Tld::Se => Some(Incentive {
                discount_cents: 110, // ≈ 10 SEK
                max_failures_per_halfyear: 14,
            }),
            _ => None,
        }
    }

    /// The registry's conventional nameserver hostname in the simulation.
    pub fn registry_ns(self) -> Name {
        Name::parse(&format!("a.{}-servers.sim", self.label())).expect("static name parses")
    }

    /// Finds the TLD of a second-level domain name, if it is one we study.
    ///
    /// This is a generation-read hot path (called once per domain per
    /// scan), so it matches the final label in place instead of
    /// materialising `domain.parent()` and five TLD zone names per call.
    pub fn of_domain(domain: &Name) -> Option<Tld> {
        match domain.labels() {
            [_, tld] => ALL_TLDS
                .into_iter()
                .find(|t| tld.as_bytes().eq_ignore_ascii_case(t.label().as_bytes())),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ".{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_zones() {
        assert_eq!(Tld::Com.label(), "com");
        assert_eq!(Tld::Nl.zone(), Name::parse("nl").unwrap());
        assert_eq!(Tld::Se.to_string(), ".se");
    }

    #[test]
    fn incentives_match_paper() {
        assert!(Tld::Com.incentive().is_none());
        assert!(Tld::Org.incentive().is_none());
        let nl = Tld::Nl.incentive().unwrap();
        assert_eq!(nl.discount_cents, 30);
        assert_eq!(nl.max_failures_per_halfyear, 14);
        assert!(Tld::Se.incentive().unwrap().discount_cents > nl.discount_cents);
    }

    #[test]
    fn cctld_flag() {
        assert!(!Tld::Com.is_cctld());
        assert!(Tld::Nl.is_cctld());
        assert!(Tld::Se.is_cctld());
    }

    #[test]
    fn of_domain_resolves_sld() {
        let d = Name::parse("example.com").unwrap();
        assert_eq!(Tld::of_domain(&d), Some(Tld::Com));
        let nl = Name::parse("voorbeeld.nl").unwrap();
        assert_eq!(Tld::of_domain(&nl), Some(Tld::Nl));
        let other = Name::parse("example.io").unwrap();
        assert_eq!(Tld::of_domain(&other), None);
        assert_eq!(Tld::of_domain(&Name::root()), None);
        // Only the *second* level maps: deeper names have non-TLD parents.
        let deep = Name::parse("a.b.com").unwrap();
        assert_eq!(Tld::of_domain(&deep), None);
    }

    #[test]
    fn registry_ns_are_distinct() {
        let mut hosts: Vec<Name> = ALL_TLDS.iter().map(|t| t.registry_ns()).collect();
        hosts.dedup();
        assert_eq!(hosts.len(), 5);
    }
}
