//! The ecosystem event log: what happened, when, to whom.
//!
//! High-volume population events (purchases, routine signings) are counted
//! but not logged individually unless verbose logging is on; security-
//! relevant events (forged email accepted, DS installed on the wrong
//! domain) are always logged — they are the paper's anecdotes.

use std::collections::BTreeMap;

use dsec_wire::Name;

use crate::clock::SimDate;
use crate::rollover::RolloverStyle;
use crate::RegistrarId;

/// Something that happened in the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A domain was purchased.
    Purchased {
        /// The domain.
        domain: Name,
        /// From which registrar.
        registrar: RegistrarId,
    },
    /// A zone was signed (DNSKEY+RRSIG published).
    Signed {
        /// The domain.
        domain: Name,
    },
    /// A DS RRset reached the registry.
    DsPublished {
        /// The domain.
        domain: Name,
    },
    /// A DS upload attempt was rejected.
    DsRejected {
        /// The domain.
        domain: Name,
        /// Why.
        reason: String,
    },
    /// SECURITY: a support agent installed a DS on a different customer's
    /// domain (the paper's chat anecdote, §5.3).
    DsOnWrongDomain {
        /// Domain the DS was meant for.
        intended: Name,
        /// Domain that actually received it.
        victim: Name,
    },
    /// SECURITY: an unauthenticated (forgeable) email updated a DS record.
    ForgedEmailAccepted {
        /// The affected domain.
        domain: Name,
        /// The address the mail claimed to come from.
        claimed_from: String,
    },
    /// A reseller's partner migration completed for one domain at renewal.
    PartnerMigrated {
        /// The domain.
        domain: Name,
        /// New registrar of record.
        new_sponsor: RegistrarId,
    },
    /// A registry CDS scan applied a child-requested DS change.
    CdsApplied {
        /// The domain.
        domain: Name,
    },
    /// A third-party-operated domain's owner failed to relay the DS to the
    /// registrar (the 40% failure of §7).
    RelayDropped {
        /// The domain.
        domain: Name,
    },
    /// A scheduled rollover started serving its transitional key set.
    RolloverPrepared {
        /// The domain.
        domain: Name,
        /// The choreography in use.
        style: RolloverStyle,
    },
    /// The parent DS moved to the new keys (the registrar/registry leg).
    RolloverDsSwapped {
        /// The domain.
        domain: Name,
        /// Whether the swap happened on the planned day (`false` marks a
        /// mistimed registrar).
        on_schedule: bool,
    },
    /// Old key material withdrawn; the rollover finished.
    RolloverCompleted {
        /// The domain.
        domain: Name,
        /// The choreography that ran.
        style: RolloverStyle,
    },
    /// Keys were replaced outright without coordinating the DS — the
    /// classic broken rollover.
    RolloverAbrupt {
        /// The domain.
        domain: Name,
    },
    /// A zone's RRSIGs lapsed (stalled signer / rollover frozen mid-way):
    /// validating resolvers now see the domain as bogus.
    SignatureExpired {
        /// The domain.
        domain: Name,
    },
    /// A delegation's NS set changed through a registrar channel.
    NsChanged {
        /// The domain.
        domain: Name,
    },
    /// SECURITY: an unauthenticated (forgeable) email redelegated a
    /// domain's NS set — the classic registrar-channel takeover.
    ForgedNsAccepted {
        /// The affected domain.
        domain: Name,
        /// The address the mail claimed to come from.
        claimed_from: String,
    },
    /// SECURITY: a takeover attempt bounced off the registrar's
    /// authentication policy (the attack plane's negative space).
    AttackRepelled {
        /// The targeted domain.
        domain: Name,
    },
    /// SECURITY: a hijack was noticed (monitoring / registrant report).
    HijackDetected {
        /// The captured domain.
        domain: Name,
    },
    /// SECURITY: the registrar restored the pre-attack DS/NS state.
    HijackRemediated {
        /// The recovered domain.
        domain: Name,
    },
    /// SECURITY: an on-path attacker started racing forged responses
    /// against resolutions under a zone (the Kaminsky-style campaign).
    PoisonRaceLaunched {
        /// The zone whose subtree is contested.
        zone: Name,
    },
    /// SECURITY: the on-path forgery campaign against a zone ended.
    PoisonRaceEnded {
        /// The zone that is no longer contested.
        zone: Name,
    },
    /// A successor root trust anchor was published alongside the old one
    /// (RFC 5011 AddPend: the hold-down clock starts).
    TrustAnchorPublished {
        /// Day the new anchor becomes trusted by followers.
        trusted_on: SimDate,
    },
    /// The hold-down elapsed: RFC 5011 followers now trust the new
    /// anchor.
    TrustAnchorPromoted,
    /// The old root trust anchor was revoked and the zone re-signed with
    /// the successor only.
    TrustAnchorRevoked {
        /// Whether followers already trusted the successor when the old
        /// anchor went away (`false` marks a mistimed roll: validators
        /// are stranded until promotion).
        followers_ready: bool,
    },
}

impl Event {
    /// Short machine-readable kind, used for counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Purchased { .. } => "purchased",
            Event::Signed { .. } => "signed",
            Event::DsPublished { .. } => "ds_published",
            Event::DsRejected { .. } => "ds_rejected",
            Event::DsOnWrongDomain { .. } => "ds_on_wrong_domain",
            Event::ForgedEmailAccepted { .. } => "forged_email_accepted",
            Event::PartnerMigrated { .. } => "partner_migrated",
            Event::CdsApplied { .. } => "cds_applied",
            Event::RelayDropped { .. } => "relay_dropped",
            Event::RolloverPrepared { .. } => "rollover_prepared",
            Event::RolloverDsSwapped { .. } => "rollover_ds_swapped",
            Event::RolloverCompleted { .. } => "rollover_completed",
            Event::RolloverAbrupt { .. } => "rollover_abrupt",
            Event::SignatureExpired { .. } => "signature_expired",
            Event::NsChanged { .. } => "ns_changed",
            Event::ForgedNsAccepted { .. } => "forged_ns_accepted",
            Event::AttackRepelled { .. } => "attack_repelled",
            Event::HijackDetected { .. } => "hijack_detected",
            Event::HijackRemediated { .. } => "hijack_remediated",
            Event::PoisonRaceLaunched { .. } => "poison_race_launched",
            Event::PoisonRaceEnded { .. } => "poison_race_ended",
            Event::TrustAnchorPublished { .. } => "trust_anchor_published",
            Event::TrustAnchorPromoted => "trust_anchor_promoted",
            Event::TrustAnchorRevoked { .. } => "trust_anchor_revoked",
        }
    }

    /// Whether the event is always logged regardless of verbosity.
    pub fn is_security_relevant(&self) -> bool {
        matches!(
            self,
            Event::DsOnWrongDomain { .. }
                | Event::ForgedEmailAccepted { .. }
                | Event::ForgedNsAccepted { .. }
                | Event::AttackRepelled { .. }
                | Event::HijackDetected { .. }
                | Event::HijackRemediated { .. }
                | Event::PoisonRaceLaunched { .. }
                | Event::PoisonRaceEnded { .. }
        )
    }

    /// Key-lifecycle transitions (rollover phases, abrupt rolls, expired
    /// signatures). Logged unconditionally — like security events — so
    /// the scanner can classify per-operator rollover style from the log
    /// even in quiet population runs.
    pub fn is_key_lifecycle(&self) -> bool {
        matches!(
            self,
            Event::RolloverPrepared { .. }
                | Event::RolloverDsSwapped { .. }
                | Event::RolloverCompleted { .. }
                | Event::RolloverAbrupt { .. }
                | Event::SignatureExpired { .. }
                | Event::TrustAnchorPublished { .. }
                | Event::TrustAnchorPromoted
                | Event::TrustAnchorRevoked { .. }
        )
    }
}

/// The log plus per-kind counters.
#[derive(Debug, Default)]
pub struct EventLog {
    /// Logged events with their dates.
    entries: Vec<(SimDate, Event)>,
    /// Always-on counters per event kind.
    counters: BTreeMap<&'static str, u64>,
    /// Log every event (tests / probe runs) or only security events
    /// (population runs).
    pub verbose: bool,
}

impl EventLog {
    /// A quiet log (counters always on, entries only for security events).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event.
    pub fn record(&mut self, date: SimDate, event: Event) {
        *self.counters.entry(event.kind()).or_default() += 1;
        if self.verbose || event.is_security_relevant() || event.is_key_lifecycle() {
            self.entries.push((date, event));
        }
    }

    /// The logged entries.
    pub fn entries(&self) -> &[(SimDate, Event)] {
        &self.entries
    }

    /// Counter for one kind.
    pub fn count(&self, kind: &str) -> u64 {
        self.counters.get(kind).copied().unwrap_or(0)
    }

    /// All counters.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn quiet_log_keeps_security_events_only() {
        let mut log = EventLog::new();
        log.record(
            SimDate(0),
            Event::Purchased {
                domain: name("x.com"),
                registrar: RegistrarId(1),
            },
        );
        log.record(
            SimDate(1),
            Event::ForgedEmailAccepted {
                domain: name("x.com"),
                claimed_from: "evil@attacker.net".into(),
            },
        );
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.count("purchased"), 1);
        assert_eq!(log.count("forged_email_accepted"), 1);
        assert_eq!(log.count("nonexistent"), 0);
    }

    #[test]
    fn lifecycle_events_always_logged() {
        let mut log = EventLog::new();
        log.record(
            SimDate(3),
            Event::RolloverPrepared {
                domain: name("x.com"),
                style: RolloverStyle::DoubleSignatureKsk,
            },
        );
        log.record(
            SimDate(5),
            Event::RolloverDsSwapped {
                domain: name("x.com"),
                on_schedule: false,
            },
        );
        log.record(SimDate(9), Event::SignatureExpired { domain: name("x.com") });
        assert_eq!(log.entries().len(), 3, "quiet log still keeps lifecycle events");
        assert_eq!(log.count("rollover_prepared"), 1);
        assert_eq!(log.count("rollover_ds_swapped"), 1);
        assert_eq!(log.count("signature_expired"), 1);
    }

    #[test]
    fn verbose_log_keeps_everything() {
        let mut log = EventLog::new();
        log.verbose = true;
        log.record(
            SimDate(0),
            Event::Signed {
                domain: name("x.com"),
            },
        );
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            Event::DsOnWrongDomain {
                intended: name("a.com"),
                victim: name("b.com")
            }
            .kind(),
            "ds_on_wrong_domain"
        );
        assert!(Event::DsOnWrongDomain {
            intended: name("a.com"),
            victim: name("b.com")
        }
        .is_security_relevant());
    }
}
