//! The simulation calendar: one tick = one day.
//!
//! [`SimDate`] counts days since 2015-01-01 (shortly before the paper's
//! measurement window opens on 2015-03-01) and converts to calendar dates
//! and epoch seconds, so RRSIG validity windows and report axes agree.

use std::fmt;

/// Epoch seconds at 2015-01-01T00:00:00Z.
const BASE_EPOCH: u32 = 1_420_070_400;

/// Days per month in a non-leap year.
const MONTH_DAYS: [u16; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A simulation date: whole days since 2015-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDate(pub u32);

impl SimDate {
    /// 2015-01-01, day zero of the simulation.
    pub const EPOCH: SimDate = SimDate(0);

    /// Builds from a calendar date (2015 ≤ year ≤ 2035).
    pub fn from_ymd(year: u16, month: u8, day: u8) -> SimDate {
        assert!((2015..=2035).contains(&year), "year out of supported range");
        assert!((1..=12).contains(&month) && day >= 1, "bad calendar date");
        let mut days: u32 = 0;
        for y in 2015..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..month {
            days += month_len(year, m) as u32;
        }
        assert!(day as u16 <= month_len(year, month), "bad day of month");
        SimDate(days + day as u32 - 1)
    }

    /// Decomposes into (year, month, day).
    pub fn ymd(self) -> (u16, u8, u8) {
        let mut remaining = self.0;
        let mut year = 2015u16;
        loop {
            let len = if is_leap(year) { 366 } else { 365 };
            if remaining < len {
                break;
            }
            remaining -= len;
            year += 1;
        }
        let mut month = 1u8;
        loop {
            let len = month_len(year, month) as u32;
            if remaining < len {
                break;
            }
            remaining -= len;
            month += 1;
        }
        (year, month, remaining as u8 + 1)
    }

    /// Seconds since the UNIX epoch at 00:00 UTC of this day.
    pub fn epoch_seconds(self) -> u32 {
        BASE_EPOCH + self.0 * 86_400
    }

    /// This date plus `days`.
    pub fn plus_days(self, days: u32) -> SimDate {
        SimDate(self.0 + days)
    }

    /// Whole days from `earlier` to `self` (saturating at 0).
    pub fn days_since(self, earlier: SimDate) -> u32 {
        self.0.saturating_sub(earlier.0)
    }
}

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn month_len(year: u16, month: u8) -> u16 {
    if month == 2 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[month as usize - 1]
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2015_01_01() {
        assert_eq!(SimDate::EPOCH.to_string(), "2015-01-01");
        assert_eq!(SimDate::EPOCH.epoch_seconds(), 1_420_070_400);
    }

    #[test]
    fn known_dates() {
        // The paper's measurement window endpoints.
        assert_eq!(SimDate::from_ymd(2015, 3, 1).to_string(), "2015-03-01");
        assert_eq!(SimDate::from_ymd(2016, 12, 31).to_string(), "2016-12-31");
        // Cloudflare universal DNSSEC announcement.
        assert_eq!(SimDate::from_ymd(2015, 11, 11).to_string(), "2015-11-11");
    }

    #[test]
    fn round_trips_every_day_of_window() {
        for day in 0..(3 * 366) {
            let d = SimDate(day);
            let (y, m, dd) = d.ymd();
            assert_eq!(SimDate::from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn leap_year_2016_handled() {
        let feb28 = SimDate::from_ymd(2016, 2, 28);
        let feb29 = feb28.plus_days(1);
        assert_eq!(feb29.to_string(), "2016-02-29");
        assert_eq!(feb29.plus_days(1).to_string(), "2016-03-01");
    }

    #[test]
    fn epoch_seconds_spacing() {
        let a = SimDate::from_ymd(2015, 3, 1);
        let b = a.plus_days(1);
        assert_eq!(b.epoch_seconds() - a.epoch_seconds(), 86_400);
    }

    #[test]
    fn days_since() {
        let a = SimDate::from_ymd(2015, 3, 1);
        let b = SimDate::from_ymd(2016, 3, 1);
        assert_eq!(b.days_since(a), 366); // 2016 is a leap year
        assert_eq!(a.days_since(b), 0);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(SimDate::from_ymd(2015, 6, 1) < SimDate::from_ymd(2015, 6, 2));
        assert!(SimDate::from_ymd(2015, 12, 31) < SimDate::from_ymd(2016, 1, 1));
    }

    #[test]
    #[should_panic(expected = "bad day of month")]
    fn rejects_feb_30() {
        SimDate::from_ymd(2015, 2, 30);
    }
}
