//! World-lifetime extension slots for downstream crates.
//!
//! The scan pipeline lives above the ecosystem in the crate graph, yet
//! its steady-state caches must live *with* the world they describe: a
//! per-campaign cache restarts cold every campaign even though the
//! authority plane underneath is unchanged, and a process-global cache
//! keyed by world address is unsound (allocators reuse addresses). The
//! [`Annex`] closes the layering gap with a [`TypeId`]-keyed slot map —
//! a downstream crate defines its cache type privately and parks one
//! instance per world here, without this crate ever naming the type.
//!
//! Slots are created lazily, shared behind [`Arc`], and live exactly as
//! long as the world. They are deliberately *not* serialized, cloned,
//! or inspected: anything stored here must be a pure cache whose loss
//! changes performance, never results.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Type-keyed extension slots attached to a
/// [`World`](crate::world::World). See the module docs.
#[derive(Default)]
pub struct Annex {
    slots: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl std::fmt::Debug for Annex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Annex")
            .field("slots", &self.slots.lock().len())
            .finish()
    }
}

impl Annex {
    /// The slot for type `T`, created with `init` on first access. Every
    /// later call for the same `T` returns the same instance.
    pub fn get_or_init<T: Send + Sync + 'static>(&self, init: impl FnOnce() -> T) -> Arc<T> {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(init()));
        slot.clone()
            .downcast::<T>()
            .expect("annex slots are keyed by their concrete TypeId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_yields_same_instance() {
        let annex = Annex::default();
        let a = annex.get_or_init(|| Mutex::new(0u64));
        *a.lock() = 41;
        let b = annex.get_or_init(|| Mutex::new(0u64));
        assert_eq!(*b.lock(), 41, "second access sees the first slot");
        *b.lock() += 1;
        assert_eq!(*a.lock(), 42, "both handles alias one instance");
    }

    #[test]
    fn distinct_types_get_distinct_slots() {
        let annex = Annex::default();
        let n = annex.get_or_init(|| 7u64);
        let s = annex.get_or_init(|| String::from("seven"));
        assert_eq!(*n, 7);
        assert_eq!(*s, "seven");
    }

    #[test]
    fn init_runs_once() {
        let annex = Annex::default();
        let mut calls = 0;
        annex.get_or_init(|| {
            calls += 1;
            0u8
        });
        annex.get_or_init(|| {
            calls += 1;
            0u8
        });
        assert_eq!(calls, 1, "later accesses reuse the slot");
    }
}
