//! Registered domains and their hosting/DNSSEC state.

use dsec_dnssec::ZoneKeys;
use dsec_wire::Name;

use crate::clock::SimDate;
use crate::operator::OperatorId;
use crate::policy::Plan;
use crate::tld::Tld;
use crate::RegistrarId;

/// Who runs the authoritative nameservers for a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hosting {
    /// The registrar's own hosting (the common default).
    Registrar {
        /// The customer's plan tier (gates NameCheap-style signing).
        plan: Plan,
    },
    /// The owner runs their own nameserver (`ns1.<domain>` by convention).
    Owner,
    /// A third-party DNS operator (Cloudflare / DNSPod model).
    ThirdParty {
        /// Which operator.
        operator: OperatorId,
    },
}

/// One registered second-level domain.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The domain name.
    pub name: Name,
    /// Its TLD.
    pub tld: Tld,
    /// The registrar the customer bought it from (a reseller keeps the
    /// customer relationship; `sponsor` below is who talks to the registry).
    pub registrar: RegistrarId,
    /// The accredited registrar of record at the registry (differs from
    /// `registrar` when that one is a reseller).
    pub sponsor: RegistrarId,
    /// Hosting arrangement.
    pub hosting: Hosting,
    /// Zone keys, present iff the zone is signed (DNSKEY+RRSIG published).
    pub keys: Option<ZoneKeys>,
    /// Registration date.
    pub created: SimDate,
    /// Next renewal date.
    pub expires: SimDate,
    /// Reseller switched partners; the registry transfer (and any new
    /// DNSSEC defaults) applies at the next renewal (the Antagonist /
    /// TransIP pattern from §6.3).
    pub pending_partner_migration: bool,
    /// The registrant's contact address for email-channel authentication.
    pub registrant_email: String,
}

impl Domain {
    /// The owner-hosting nameserver hostname for this domain.
    pub fn owner_ns_host(&self) -> Name {
        self.name.child("ns1").expect("ns1 label fits")
    }

    /// True when the zone publishes DNSKEYs (signed by whoever hosts it).
    pub fn is_signed(&self) -> bool {
        self.keys.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_ns_host_is_under_domain() {
        let d = Domain {
            name: Name::parse("example.com").unwrap(),
            tld: Tld::Com,
            registrar: RegistrarId(0),
            sponsor: RegistrarId(0),
            hosting: Hosting::Owner,
            keys: None,
            created: SimDate(0),
            expires: SimDate(365),
            pending_partner_migration: false,
            registrant_email: "owner@example.com".into(),
        };
        assert_eq!(d.owner_ns_host(), Name::parse("ns1.example.com").unwrap());
        assert!(!d.is_signed());
    }
}
