//! # dsec-ecosystem — the simulated registration world
//!
//! Everything between "a customer wants a domain" and "records appear in
//! zones": TLD [`registry::Registry`]s, [`registrar::Registrar`]s and
//! resellers with the policy knobs the paper's Tables 2–4 document,
//! [`operator::Operator`]s (including third-party operators like
//! Cloudflare), owners, the email channel, and the daily simulation
//! [`world::World::tick`].
//!
//! Every DNSSEC state transition performs real work: signing puts real
//! RRSIGs in zones served by real authorities, DS uploads put real DS
//! RRsets (signed by the registry) in the TLD zone, and a misconfigured
//! domain genuinely fails validation when resolved.

#![warn(missing_docs)]

pub mod anchor;
pub mod annex;
pub mod clock;
pub mod domain;
pub mod events;
pub mod operator;
pub mod policy;
pub mod registrar;
pub mod registry;
pub mod rollover;
pub mod table;
pub mod tld;
pub mod world;

pub use anchor::AnchorRollPlan;
pub use annex::Annex;
pub use clock::SimDate;
pub use domain::{Domain, Hosting};
pub use events::{Event, EventLog};
pub use operator::{Operator, OperatorId};
pub use policy::{ExternalDs, OperatorDnssec, Plan, RegistrarPolicy, TldPolicy, TldRole};
pub use registrar::{Milestone, PolicyChange, Registrar};
pub use registry::{Registry, RegistryError};
pub use rollover::{DsTiming, RolloverPhase, RolloverPlan, RolloverStyle};
pub use table::{DomainStore, DomainTable, OrderedRows};
pub use tld::{Incentive, Tld, ALL_TLDS};
pub use world::{
    ActionError, DomainQuery, DsSubmission, ObservationQuality, RolloverState, ThirdParty,
    UploadOutcome, World, WorldConfig, SCAN_DEADLINE_MS,
};

/// Index of a registrar in the world's registrar table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegistrarId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_dnssec::{classify, DeploymentStatus, Misconfiguration};
    use dsec_wire::{DsRdata, Name};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn small_world() -> World {
        World::new(WorldConfig {
            key_pool: 2,
            ..WorldConfig::default()
        })
    }

    fn add_full_registrar(world: &mut World, nm: &str, ns: &str) -> RegistrarId {
        world.add_registrar(
            nm,
            name(ns),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Web { validates: true },
                tlds: ALL_TLDS
                    .iter()
                    .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                    .collect(),
            },
        )
    }

    fn add_no_dnssec_registrar(world: &mut World, nm: &str, ns: &str) -> RegistrarId {
        world.add_registrar(nm, name(ns), RegistrarPolicy::no_dnssec(&ALL_TLDS))
    }

    fn now(world: &World) -> u32 {
        world.today.epoch_seconds()
    }

    #[test]
    fn purchase_with_default_signing_is_fully_deployed() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
    }

    #[test]
    fn purchase_from_no_dnssec_registrar_is_not_deployed() {
        let mut w = small_world();
        let r = add_no_dnssec_registrar(&mut w, "BadReg", "badreg.net");
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::NotDeployed);
        assert_eq!(w.enable_dnssec(&d), Err(ActionError::DnssecUnsupported));
    }

    #[test]
    fn name_collisions_rejected() {
        let mut w = small_world();
        let r = add_no_dnssec_registrar(&mut w, "Reg", "reg.net");
        w.purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        assert_eq!(
            w.purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com"),
            Err(ActionError::NameTaken)
        );
    }

    #[test]
    fn unsold_tld_rejected() {
        let mut w = small_world();
        let r = w.add_registrar(
            "ComOnly",
            name("comonly.net"),
            RegistrarPolicy::no_dnssec(&[Tld::Com]),
        );
        assert_eq!(
            w.purchase(r, "x", Tld::Se, Hosting::Registrar { plan: Plan::Free }, "o@x.com"),
            Err(ActionError::TldNotSold)
        );
    }

    #[test]
    fn paid_dnssec_needs_payment() {
        let mut w = small_world();
        let r = w.add_registrar(
            "PayReg",
            name("payreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Paid {
                    cents_per_year: 3500,
                    adoption_rate: 0.0002,
                },
                external_ds: ExternalDs::Web { validates: false },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        assert_eq!(
            w.enable_dnssec(&d),
            Err(ActionError::RequiresPayment { cents_per_year: 3500 })
        );
        w.enable_dnssec_paid(&d).unwrap();
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
    }

    #[test]
    fn plan_gated_signing() {
        let mut w = small_world();
        let r = w.add_registrar(
            "PlanReg",
            name("planreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::DefaultOnPlans(vec![Plan::Premium]),
                external_ds: ExternalDs::Web { validates: false },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let free = w
            .purchase(r, "free", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let premium = w
            .purchase(r, "prem", Tld::Com, Hosting::Registrar { plan: Plan::Premium }, "o@x.com")
            .unwrap();
        assert!(!w.domain(&free).unwrap().is_signed());
        assert!(w.domain(&premium).unwrap().is_signed());
    }

    #[test]
    fn partial_deployment_when_registrar_never_uploads_ds() {
        // The MeshDigital / Loopia-for-.com pattern.
        let mut w = small_world();
        let r = w.add_registrar(
            "PartialReg",
            name("partialreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Email {
                    verifies_sender: false,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                tlds: [(Tld::Com, TldPolicy::without_ds(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::PartiallyDeployed
        );
    }

    #[test]
    fn owner_hosting_full_cycle_via_validating_web_form() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "self", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let ns = w.switch_to_owner_hosting(&d).unwrap();
        assert_eq!(ns, name("ns1.self.com"));
        // After the switch the domain is unsigned again.
        let obs = w.observation_of(&d);
        assert!(obs.dnskey_rrset.is_none());
        let ds = w.owner_sign_zone(&d).unwrap();
        // Without DS upload: partial.
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::PartiallyDeployed
        );
        // Upload via the validating web form.
        assert_eq!(
            w.upload_ds(&d, ds, DsSubmission::Web).unwrap(),
            UploadOutcome::Accepted
        );
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
    }

    #[test]
    fn validating_web_form_rejects_garbage_ds() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "self", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        w.switch_to_owner_hosting(&d).unwrap();
        w.owner_sign_zone(&d).unwrap();
        let garbage = DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xAA; 32],
        };
        assert_eq!(
            w.upload_ds(&d, garbage, DsSubmission::Web).unwrap(),
            UploadOutcome::RejectedInvalid
        );
        assert!(w.registry(Tld::Com).ds_of(&d).is_empty());
    }

    #[test]
    fn non_validating_web_form_accepts_garbage_making_domain_bogus() {
        let mut w = small_world();
        let r = w.add_registrar(
            "SloppyReg",
            name("sloppyreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::Web { validates: false },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(r, "self", Tld::Com, Hosting::Owner, "o@x.com")
            .unwrap();
        w.owner_sign_zone(&d).unwrap();
        let garbage = DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: b"copy paste error".to_vec(),
        };
        assert_eq!(
            w.upload_ds(&d, garbage, DsSubmission::Web).unwrap(),
            UploadOutcome::Accepted
        );
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
        );
    }

    #[test]
    fn email_channel_authentication_matrix() {
        let mut w = small_world();
        let strict = w.add_registrar(
            "StrictMail",
            name("strictmail.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::Email {
                    verifies_sender: true,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(strict, "a", Tld::Com, Hosting::Owner, "owner@a.com")
            .unwrap();
        let ds = w.owner_sign_zone(&d).unwrap();
        // Forged header, attacker mailbox → rejected.
        assert_eq!(
            w.upload_ds(
                &d,
                ds.clone(),
                DsSubmission::Email {
                    claimed_from: "owner@a.com".into(),
                    actual_from: "evil@attacker.net".into(),
                }
            )
            .unwrap(),
            UploadOutcome::EmailNotVerified
        );
        // Genuine sender → accepted.
        assert_eq!(
            w.upload_ds(
                &d,
                ds,
                DsSubmission::Email {
                    claimed_from: "owner@a.com".into(),
                    actual_from: "owner@a.com".into(),
                }
            )
            .unwrap(),
            UploadOutcome::Accepted
        );
    }

    #[test]
    fn forged_email_hijack_succeeds_at_lax_registrar() {
        // The paper's §5.3 vulnerability: no email authentication at all.
        let mut w = small_world();
        let lax = w.add_registrar(
            "LaxMail",
            name("laxmail.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::Email {
                    verifies_sender: false,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(lax, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
            .unwrap();
        w.owner_sign_zone(&d).unwrap();
        let attacker_ds = DsRdata {
            key_tag: 666,
            algorithm: 8,
            digest_type: 2,
            digest: vec![6; 32],
        };
        assert_eq!(
            w.upload_ds(
                &d,
                attacker_ds.clone(),
                DsSubmission::Email {
                    claimed_from: "owner@victim.com".into(), // forged
                    actual_from: "evil@attacker.net".into(),
                }
            )
            .unwrap(),
            UploadOutcome::Accepted
        );
        assert_eq!(w.registry(Tld::Com).ds_of(&d), vec![attacker_ds]);
        assert_eq!(w.events.count("forged_email_accepted"), 1);
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
        );
    }

    #[test]
    fn foreign_sender_acceptance_is_worst_case() {
        let mut w = small_world();
        let worst = w.add_registrar(
            "WorstMail",
            name("worstmail.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::Email {
                    verifies_sender: false,
                    accepts_foreign_sender: true,
                    validates: false,
                },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(worst, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
            .unwrap();
        w.owner_sign_zone(&d).unwrap();
        let outcome = w
            .upload_ds(
                &d,
                DsRdata {
                    key_tag: 1,
                    algorithm: 8,
                    digest_type: 2,
                    digest: vec![1; 32],
                },
                DsSubmission::Email {
                    claimed_from: "whoever@wherever.org".into(),
                    actual_from: "whoever@wherever.org".into(),
                },
            )
            .unwrap();
        assert_eq!(outcome, UploadOutcome::Accepted);
    }

    #[test]
    fn chat_channel_can_hit_wrong_domain() {
        let mut w = small_world();
        let chat = w.add_registrar(
            "ChatReg",
            name("chatreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::Chat { mistake_rate: 1.0 },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let victim = w
            .purchase(chat, "victim", Tld::Com, Hosting::Owner, "v@x.com")
            .unwrap();
        let d = w
            .purchase(chat, "mine", Tld::Com, Hosting::Owner, "m@x.com")
            .unwrap();
        let ds = w.owner_sign_zone(&d).unwrap();
        let outcome = w.upload_ds(&d, ds, DsSubmission::Chat).unwrap();
        assert_eq!(outcome, UploadOutcome::AcceptedOnWrongDomain(victim.clone()));
        assert!(!w.registry(Tld::Com).ds_of(&victim).is_empty());
        assert!(w.registry(Tld::Com).ds_of(&d).is_empty());
        assert_eq!(w.events.count("ds_on_wrong_domain"), 1);
    }

    #[test]
    fn fetch_dnskey_channel_derives_correct_ds() {
        // The PCExtreme model: no user-supplied data at all.
        let mut w = small_world();
        let r = w.add_registrar(
            "FetchReg",
            name("fetchreg.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Unsupported,
                external_ds: ExternalDs::FetchDnskey,
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        let d = w
            .purchase(r, "self", Tld::Com, Hosting::Owner, "o@x.com")
            .unwrap();
        let real_ds = w.owner_sign_zone(&d).unwrap();
        let bogus = DsRdata {
            key_tag: 0,
            algorithm: 0,
            digest_type: 0,
            digest: vec![],
        };
        assert_eq!(
            w.upload_ds(&d, bogus, DsSubmission::FetchDnskey).unwrap(),
            UploadOutcome::Accepted
        );
        assert_eq!(w.registry(Tld::Com).ds_of(&d), vec![real_ds]);
    }

    #[test]
    fn unsupported_channel_is_reported() {
        let mut w = small_world();
        let r = add_no_dnssec_registrar(&mut w, "NoDs", "nods.net");
        let d = w
            .purchase(r, "self", Tld::Com, Hosting::Owner, "o@x.com")
            .unwrap();
        let ds = w.owner_sign_zone(&d).unwrap();
        for via in [
            DsSubmission::Web,
            DsSubmission::Chat,
            DsSubmission::Ticket,
            DsSubmission::FetchDnskey,
        ] {
            assert_eq!(
                w.upload_ds(&d, ds.clone(), via).unwrap(),
                UploadOutcome::ChannelUnsupported
            );
        }
    }

    #[test]
    fn reseller_routes_through_partner() {
        let mut w = small_world();
        let partner = add_full_registrar(&mut w, "PartnerReg", "partnerreg.net");
        let reseller = w.add_registrar(
            "ResellerCo",
            name("resellerco.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Web { validates: false },
                tlds: [(
                    Tld::Com,
                    TldPolicy::full(TldRole::ResellerVia("PartnerReg".into())),
                )]
                .into(),
            },
        );
        let d = w
            .purchase(reseller, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let dom = w.domain(&d).unwrap();
        assert_eq!(dom.registrar, reseller);
        assert_eq!(dom.sponsor, partner);
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
    }

    #[test]
    fn third_party_flow_with_and_without_relay() {
        let mut w = small_world();
        let r = add_no_dnssec_registrar(&mut w, "Reg", "reg.net");
        // Give the registrar a DS channel so relays can land.
        w.set_external_ds(r, ExternalDs::Web { validates: false });
        let cf = w.add_third_party(
            "Cloudflare",
            name("cloudflare-dns.sim"),
            Some(SimDate::from_ymd(2015, 11, 11)),
            0.0,
            0.6,
        );
        let d = w
            .purchase(r, "site", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        w.enroll_third_party(&d, cf).unwrap();
        assert_eq!(
            w.third_party_enable_dnssec(&d),
            Err(ActionError::DnssecUnsupported)
        );
        w.advance_to(SimDate::from_ymd(2015, 11, 12));
        let ds = w.third_party_enable_dnssec(&d).unwrap();
        // Signed but no DS yet: the paper's 40% failure state.
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::PartiallyDeployed
        );
        // The diligent 60% relay the DS via their registrar.
        assert_eq!(
            w.upload_ds(&d, ds, DsSubmission::Web).unwrap(),
            UploadOutcome::Accepted
        );
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
    }

    #[test]
    fn population_optin_hazard_grows_adoption() {
        let mut w = small_world();
        let r = w.add_registrar(
            "OVHlike",
            name("ovhlike.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::OptIn { adoption_rate: 0.26 },
                external_ds: ExternalDs::Web { validates: true },
                tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
            },
        );
        for i in 0..40 {
            w.purchase(
                r,
                &format!("c{i}"),
                Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "o@x.com",
            )
            .unwrap();
        }
        w.set_optin_hazard(r, 0.05);
        for _ in 0..60 {
            w.tick();
        }
        let signed = w.domains().filter(|d| d.is_signed()).count();
        assert!(signed > 10, "expected substantial opt-in, got {signed}");
        assert!(signed < 40, "not everyone opts in immediately");
    }

    #[test]
    fn renewal_migration_enables_dnssec() {
        // The Antagonist pattern: reseller switches partner; existing
        // domains migrate (and get signed) at renewal.
        let mut w = small_world();
        let _old_partner = add_no_dnssec_registrar(&mut w, "DirectLike", "directlike.net");
        let _new_partner = add_full_registrar(&mut w, "OpenProviderLike", "openproviderlike.net");
        let reseller = w.add_registrar(
            "AntagonistLike",
            name("antagonistlike.net"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Email {
                    verifies_sender: true,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                tlds: [(
                    Tld::Com,
                    TldPolicy::without_ds(TldRole::ResellerVia("DirectLike".into())),
                )]
                .into(),
            },
        );
        let d = w
            .purchase(reseller, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        // Signed (reseller signs by default) but no DS → partial.
        let obs = w.observation_of(&d);
        assert_eq!(
            classify(&d, &obs, now(&w)),
            DeploymentStatus::PartiallyDeployed
        );

        w.add_milestone(
            reseller,
            w.today.plus_days(30),
            PolicyChange::SwitchPartner {
                tld: Tld::Com,
                new_partner: "OpenProviderLike".into(),
                migrate_at_renewal: true,
            },
        );
        // Advance past the renewal (365 days after purchase).
        w.advance_to(w.today.plus_days(370));
        let dom = w.domain(&d).unwrap();
        assert_eq!(dom.sponsor, w.registrar_by_name("OpenProviderLike").unwrap());
        let obs = w.observation_of(&d);
        assert_eq!(classify(&d, &obs, now(&w)), DeploymentStatus::FullyDeployed);
        assert_eq!(w.events.count("partner_migrated"), 1);
    }

    #[test]
    fn incentive_audits_award_discounts() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "NlReg", "nlreg.net");
        w.purchase(r, "goed", Tld::Nl, Hosting::Registrar { plan: Plan::Free }, "o@x.nl")
            .unwrap();
        for _ in 0..30 {
            w.tick();
        }
        let registry = w.registry(Tld::Nl);
        assert!(registry.discounts_cents.get(&r).copied().unwrap_or(0) > 0);
        assert_eq!(registry.audit_failures.get(&r).copied().unwrap_or(0), 0);
    }

    #[test]
    fn audits_count_failures_for_broken_domains() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "NlReg", "nlreg.net");
        let d = w
            .purchase(r, "kapot", Tld::Nl, Hosting::Registrar { plan: Plan::Free }, "o@x.nl")
            .unwrap();
        // Break the chain: replace the DS with garbage directly.
        let sponsor = w.domain(&d).unwrap().sponsor;
        w.registry_mut(Tld::Nl)
            .set_ds(
                sponsor,
                &d,
                &[DsRdata {
                    key_tag: 1,
                    algorithm: 8,
                    digest_type: 2,
                    digest: vec![9; 32],
                }],
            )
            .unwrap();
        for _ in 0..30 {
            w.tick();
        }
        assert!(w.registry(Tld::Nl).audit_failures.get(&r).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn cds_scan_applies_key_rollover() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "CzLike", "czlike.net");
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        w.registry_mut(Tld::Com).supports_cds = true;
        // Roll properly: publish a CDS for the new keys, signed by the old
        // keys that are still chained from the current DS.
        let new_keys = w.mismatched_keys_for(&d);
        let signer = w.signer_config();
        let op = w.registrar(r).operator;
        let old_keys = w.domain(&d).unwrap().keys.clone().unwrap();
        w.operator(op).publish_cds(
            &d,
            &old_keys,
            new_keys.ds(dsec_crypto::DigestType::Sha256),
            &signer,
        );
        w.tick();
        assert_eq!(
            w.registry(Tld::Com).ds_of(&d),
            vec![new_keys.ds(dsec_crypto::DigestType::Sha256)]
        );
        assert!(w.events.count("cds_applied") >= 1);
    }

    fn deployment_on(w: &World, d: &Name) -> DeploymentStatus {
        let obs = w.observation_of(d);
        classify(d, &obs, now(w))
    }

    #[test]
    fn scheduled_double_signature_rollover_is_seamless() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "roll", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let old_tag = w.domain(&d).unwrap().keys.as_ref().unwrap().ksk_tag();
        let plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::DoubleSignatureKsk,
            w.today.plus_days(2),
        );
        let completion = plan.completion();
        w.schedule_rollover(&d, plan).unwrap();
        // Every single day of the transition validates.
        while w.today < completion.plus_days(2) {
            w.tick();
            assert_eq!(
                deployment_on(&w, &d),
                DeploymentStatus::FullyDeployed,
                "chain broke on {:?}",
                w.today
            );
        }
        assert!(w.rollover_state(&d).is_none(), "rollover finished");
        assert_ne!(
            w.domain(&d).unwrap().keys.as_ref().unwrap().ksk_tag(),
            old_tag,
            "keys actually changed"
        );
        assert_eq!(w.events.count("rollover_prepared"), 1);
        assert_eq!(w.events.count("rollover_ds_swapped"), 1);
        assert_eq!(w.events.count("rollover_completed"), 1);
    }

    #[test]
    fn scheduled_algorithm_rollover_is_seamless_and_changes_algorithm() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "alg", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let old_alg = w.domain(&d).unwrap().keys.as_ref().unwrap().ksk.algorithm;
        let plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::Algorithm,
            w.today.plus_days(1),
        );
        let completion = plan.completion();
        w.schedule_rollover(&d, plan).unwrap();
        while w.today < completion.plus_days(1) {
            w.tick();
            assert_eq!(deployment_on(&w, &d), DeploymentStatus::FullyDeployed);
        }
        assert_ne!(
            w.domain(&d).unwrap().keys.as_ref().unwrap().ksk.algorithm,
            old_alg
        );
    }

    #[test]
    fn scheduled_prepublish_zsk_rollover_keeps_ds_and_chain() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "zsk", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let ds_before = w.registry(Tld::Com).ds_of(&d);
        let plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::PrePublishZsk,
            w.today.plus_days(1),
        );
        let completion = plan.completion();
        w.schedule_rollover(&d, plan).unwrap();
        while w.today < completion.plus_days(1) {
            w.tick();
            assert_eq!(deployment_on(&w, &d), DeploymentStatus::FullyDeployed);
        }
        assert_eq!(
            w.registry(Tld::Com).ds_of(&d),
            ds_before,
            "pre-publish ZSK rollover never touches the parent DS"
        );
        assert_eq!(w.events.count("rollover_ds_swapped"), 0);
    }

    #[test]
    fn mistimed_ds_swap_opens_exactly_the_predicted_window() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "late", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        // DS lands 5 days late: bogus from completion until the swap.
        let plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::DoubleSignatureKsk,
            w.today.plus_days(1),
        )
        .with_ds_timing(rollover::DsTiming::Late { days: 5 });
        let (from, until) = match plan.bogus_window() {
            Some((f, Some(u))) => (f, u),
            other => panic!("expected a bounded bogus window, got {other:?}"),
        };
        w.schedule_rollover(&d, plan.clone()).unwrap();
        while w.today < until.plus_days(2) {
            w.tick();
            let status = deployment_on(&w, &d);
            if plan.is_bogus_on(w.today) {
                assert_eq!(
                    status,
                    DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch),
                    "inside the window ({:?}) the stale DS must mismatch",
                    w.today
                );
            } else {
                assert_eq!(
                    status,
                    DeploymentStatus::FullyDeployed,
                    "outside the window ({:?}) the chain must hold",
                    w.today
                );
            }
        }
        assert!(w.today >= from, "walked through the whole window");
        // The mistimed swap is flagged as such in the log.
        let swapped_off_schedule = w.events.entries().iter().any(|(_, e)| {
            matches!(e, Event::RolloverDsSwapped { on_schedule: false, .. })
        });
        assert!(swapped_off_schedule);
    }

    #[test]
    fn stalled_rollover_lets_signatures_expire_for_real() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "stall", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::DoubleSignatureKsk,
            w.today.plus_days(1),
        )
        .with_signature_validity_days(4);
        w.schedule_rollover(&d, plan).unwrap();
        w.advance_to(w.today.plus_days(2)); // transitional set now served
        w.stall_rollover(&d).unwrap();
        w.advance_to(w.today.plus_days(10));
        assert_eq!(
            deployment_on(&w, &d),
            DeploymentStatus::Misconfigured(Misconfiguration::ExpiredSignature),
            "a stalled operator's RRSIGs must lapse"
        );
        assert_eq!(w.events.count("signature_expired"), 1);
        // Resuming re-signs and completes the rollover.
        w.resume_rollover(&d).unwrap();
        w.advance_to(w.today.plus_days(2));
        assert_eq!(deployment_on(&w, &d), DeploymentStatus::FullyDeployed);
        assert!(w.rollover_state(&d).is_none());
    }

    #[test]
    fn live_rollover_refreshes_bounded_signatures() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "fresh", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        // Long window, short validity: the driver must keep re-signing.
        let mut plan = rollover::RolloverPlan::correct(
            rollover::RolloverStyle::DoubleSignatureKsk,
            w.today.plus_days(1),
        )
        .with_signature_validity_days(3);
        plan.prepare_days = 6;
        plan.retire_days = 6;
        let completion = plan.completion();
        w.schedule_rollover(&d, plan).unwrap();
        while w.today < completion.plus_days(1) {
            w.tick();
            assert_eq!(
                deployment_on(&w, &d),
                DeploymentStatus::FullyDeployed,
                "bounded validity must be refreshed while live ({:?})",
                w.today
            );
        }
        assert_eq!(w.events.count("signature_expired"), 0);
    }

    #[test]
    fn rollover_error_paths_are_specific() {
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "err", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        // Completing with nothing prepared: the dedicated error, not a
        // misleading "DNSSEC unsupported".
        assert_eq!(w.complete_rollover(&d), Err(ActionError::NoPendingRollover));
        // A second prepare while one is pending is an explicit error…
        let ds1 = w.prepare_rollover(&d).unwrap();
        assert_eq!(w.prepare_rollover(&d), Err(ActionError::RolloverInProgress));
        // …as is scheduling on top of it.
        assert_eq!(
            w.schedule_rollover(
                &d,
                rollover::RolloverPlan::correct(
                    rollover::RolloverStyle::DoubleSignatureKsk,
                    w.today.plus_days(1),
                ),
            ),
            Err(ActionError::RolloverInProgress)
        );
        // The pending keys are untouched by the failed second prepare.
        let sponsor = w.domain(&d).unwrap().sponsor;
        w.registry_mut(Tld::Com).set_ds(sponsor, &d, &[ds1]).unwrap();
        w.complete_rollover(&d).unwrap();
        assert_eq!(deployment_on(&w, &d), DeploymentStatus::FullyDeployed);
        // And scheduled rollovers block the one-shot path symmetrically.
        w.schedule_rollover(
            &d,
            rollover::RolloverPlan::correct(
                rollover::RolloverStyle::DoubleSignatureKsk,
                w.today.plus_days(1),
            ),
        )
        .unwrap();
        assert_eq!(w.prepare_rollover(&d), Err(ActionError::RolloverInProgress));
        assert_eq!(
            w.stall_rollover(&Name::parse("ghost.com").unwrap()),
            Err(ActionError::NoPendingRollover)
        );
    }

    #[test]
    fn full_chain_resolves_securely_through_resolver() {
        use dsec_resolver::{Resolver, Security};
        let mut w = small_world();
        let r = add_full_registrar(&mut w, "GoodReg", "goodreg.net");
        let d = w
            .purchase(r, "shop", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x.com")
            .unwrap();
        let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
        let www = d.child("www").unwrap();
        let answer = resolver
            .resolve(&www, dsec_wire::RrType::A, now(&w))
            .unwrap();
        assert_eq!(answer.security, Security::Secure);
        assert_eq!(answer.records.len(), 1);
    }
}
