//! The root trust-anchor roll: RFC 5011 on the world's calendar.
//!
//! The rollover plane (PR 6) rolls *zone* keys under an unchanged trust
//! anchor; this plane rolls the anchor itself. The timeline mirrors the
//! real KSK-2017 choreography:
//!
//! 1. **publish** — the successor KSK appears in the root DNSKEY RRset
//!    next to the old one (double-signed, so either anchor validates).
//!    RFC 5011 followers observe it and start the add hold-down.
//! 2. **promotion** = publish + hold-down — followers now trust the
//!    successor as well.
//! 3. **revoke** — the old KSK leaves the RRset and the zone is signed
//!    by the successor only.
//!
//! A *correct* roll revokes at or after promotion: there is always at
//! least one anchor the follower trusts, and validation never blinks. A
//! *mistimed* roll revokes **during** the hold-down — every RFC 5011
//! follower is stranded with only the withdrawn anchor until promotion
//! day, and every validated answer in the gap goes Bogus. The stranded
//! window is the half-open interval `[revoke, promotion)`, the same
//! pure day arithmetic as [`RolloverPlan`](crate::rollover::RolloverPlan).

use dsec_dnssec::ADD_HOLD_DOWN_DAYS;

use crate::clock::SimDate;

/// A scheduled root trust-anchor roll. Pure calendar arithmetic — the
/// world's driver owns the zone mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorRollPlan {
    /// Day the successor KSK is published alongside the old one.
    pub publish: SimDate,
    /// RFC 5011 add hold-down applied by followers, days.
    pub hold_down_days: u32,
    /// Day the old KSK is revoked and the zone re-signed with the
    /// successor only.
    pub revoke: SimDate,
}

impl AnchorRollPlan {
    /// A correct roll: publish on `publish`, revoke the old anchor the
    /// day the hold-down elapses — followers are never anchor-less.
    pub fn correct(publish: SimDate) -> AnchorRollPlan {
        AnchorRollPlan {
            publish,
            hold_down_days: ADD_HOLD_DOWN_DAYS,
            revoke: publish.plus_days(ADD_HOLD_DOWN_DAYS),
        }
    }

    /// A mistimed roll: the old anchor is revoked only `revoke_after`
    /// days after publication, `revoke_after < hold_down` — RFC 5011
    /// followers are stranded for the rest of the hold-down.
    pub fn mistimed(publish: SimDate, revoke_after: u32) -> AnchorRollPlan {
        AnchorRollPlan {
            publish,
            hold_down_days: ADD_HOLD_DOWN_DAYS,
            revoke: publish.plus_days(revoke_after),
        }
    }

    /// Overrides the follower hold-down (builder style).
    pub fn with_hold_down(mut self, days: u32) -> AnchorRollPlan {
        self.hold_down_days = days;
        self
    }

    /// The day followers start trusting the successor anchor.
    pub fn promotion(&self) -> SimDate {
        self.publish.plus_days(self.hold_down_days)
    }

    /// The stranded-validator window `[revoke, promotion)`: days on
    /// which a follower trusts *only* the already-revoked anchor.
    /// `None` when the roll is correctly timed (revoke ≥ promotion).
    pub fn stranded_window(&self) -> Option<(SimDate, SimDate)> {
        if self.revoke < self.promotion() {
            Some((self.revoke, self.promotion()))
        } else {
            None
        }
    }

    /// Whether a follower is stranded (no valid anchor) on `day`.
    pub fn is_stranded_on(&self, day: SimDate) -> bool {
        self.stranded_window()
            .is_some_and(|(from, until)| day >= from && day < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_roll_has_no_stranded_window() {
        let plan = AnchorRollPlan::correct(SimDate(100));
        assert_eq!(plan.promotion(), SimDate(130));
        assert_eq!(plan.revoke, SimDate(130));
        assert_eq!(plan.stranded_window(), None);
        assert!(!plan.is_stranded_on(SimDate(129)));
        assert!(!plan.is_stranded_on(SimDate(130)));
    }

    #[test]
    fn mistimed_roll_strands_followers_until_promotion() {
        let plan = AnchorRollPlan::mistimed(SimDate(100), 10);
        assert_eq!(plan.revoke, SimDate(110));
        assert_eq!(plan.promotion(), SimDate(130));
        assert_eq!(plan.stranded_window(), Some((SimDate(110), SimDate(130))));
        assert!(!plan.is_stranded_on(SimDate(109)), "old anchor still live");
        assert!(plan.is_stranded_on(SimDate(110)), "revoke day strands");
        assert!(plan.is_stranded_on(SimDate(129)), "last hold-down day");
        assert!(!plan.is_stranded_on(SimDate(130)), "promotion heals");
    }

    #[test]
    fn custom_hold_down_moves_promotion() {
        let plan = AnchorRollPlan::mistimed(SimDate(0), 2).with_hold_down(5);
        assert_eq!(plan.promotion(), SimDate(5));
        assert_eq!(plan.stranded_window(), Some((SimDate(2), SimDate(5))));
    }
}
