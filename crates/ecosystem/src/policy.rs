//! Registrar policy knobs — the configuration space Tables 2 and 3 of the
//! paper explore. A registrar profile is a point in this space; the probe
//! harness must *rediscover* the configured point by acting as a customer.

use crate::tld::Tld;
use std::collections::BTreeMap;

/// A registrar DNS-hosting plan tier (NameCheap's FreeDNS vs paid plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Plan {
    /// The free tier.
    Free,
    /// A paid tier.
    Premium,
}

/// DNSSEC behavior when the registrar is the DNS operator (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorDnssec {
    /// The registrar cannot sign hosted domains at all (17 of the top 20).
    Unsupported,
    /// Signed automatically for every hosted domain.
    Default,
    /// Signed automatically, but only on certain plans (NameCheap).
    DefaultOnPlans(Vec<Plan>),
    /// Free but the customer must opt in (OVH); `adoption_rate` is the
    /// long-run fraction of customers who do.
    OptIn {
        /// Fraction of customers who eventually opt in.
        adoption_rate: f64,
    },
    /// DNSSEC is a paid add-on (GoDaddy, $35/yr); near-zero adoption.
    Paid {
        /// Price in US cents per year.
        cents_per_year: u32,
        /// Fraction of customers who pay for it.
        adoption_rate: f64,
    },
}

impl OperatorDnssec {
    /// Whether a *new* domain on `plan` gets signed automatically.
    pub fn signs_by_default(&self, plan: Plan) -> bool {
        match self {
            OperatorDnssec::Default => true,
            OperatorDnssec::DefaultOnPlans(plans) => plans.contains(&plan),
            _ => false,
        }
    }

    /// Whether the registrar can sign hosted domains at all.
    pub fn supported(&self) -> bool {
        !matches!(self, OperatorDnssec::Unsupported)
    }
}

/// How owners convey DS records for externally hosted domains (§5.3, §6.1).
#[derive(Debug, Clone, PartialEq)]
pub enum ExternalDs {
    /// No channel at all: externally hosted domains can never be secured.
    Unsupported,
    /// A web form. `validates` = checks the DS against the served DNSKEY
    /// before accepting (only OVH and DreamHost did).
    Web {
        /// Whether the form validates the uploaded DS.
        validates: bool,
    },
    /// Email. The paper found most registrars never authenticate the mail.
    Email {
        /// Requires a verification code bound to the account.
        verifies_sender: bool,
        /// Accepts mail from an address other than the registrant's
        /// (the worst case the paper observed).
        accepts_foreign_sender: bool,
        /// Checks the emailed DS against the served DNSKEY before
        /// accepting (DreamHost did, uniquely among email channels).
        validates: bool,
    },
    /// Live web chat with an agent; `mistake_rate` is the chance the agent
    /// installs the DS on the wrong domain (observed once in the study).
    Chat {
        /// Probability of a copy/paste mishap per upload.
        mistake_rate: f64,
    },
    /// Support ticket with the DS attached (123-reg); no validation.
    Ticket,
    /// The PCExtreme model: the customer asks the registrar to *fetch* the
    /// DNSKEY from the authoritative server and derive the DS itself.
    FetchDnskey,
}

impl ExternalDs {
    /// Whether any upload channel exists.
    pub fn supported(&self) -> bool {
        !matches!(self, ExternalDs::Unsupported)
    }

    /// Whether the channel checks the DS against the served DNSKEY.
    pub fn validates(&self) -> bool {
        matches!(
            self,
            ExternalDs::Web { validates: true }
                | ExternalDs::Email { validates: true, .. }
                | ExternalDs::FetchDnskey
        )
    }
}

/// A registrar's role for one TLD (Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TldRole {
    /// Accredited registrar with direct registry access.
    Registrar,
    /// Reseller through the named partner registrar.
    ResellerVia(String),
    /// Does not sell this TLD.
    NoSupport,
}

/// Per-TLD behavior of one registrar.
#[derive(Debug, Clone, PartialEq)]
pub struct TldPolicy {
    /// Registrar / reseller / unsupported.
    pub role: TldRole,
    /// Whether the registrar actually uploads DS records for this TLD when
    /// it signs hosted domains (Loopia: `.se` only; KPN: `.nl` only;
    /// NameCheap: `.com`/`.net` only; MeshDigital: almost never).
    pub publishes_ds: bool,
}

impl TldPolicy {
    /// Full support: sells the TLD and uploads DS records.
    pub fn full(role: TldRole) -> Self {
        TldPolicy {
            role,
            publishes_ds: true,
        }
    }

    /// Sells the TLD but never uploads DS (→ partial deployments).
    pub fn without_ds(role: TldRole) -> Self {
        TldPolicy {
            role,
            publishes_ds: false,
        }
    }

    /// Not sold.
    pub fn unsupported() -> Self {
        TldPolicy {
            role: TldRole::NoSupport,
            publishes_ds: false,
        }
    }
}

/// The complete policy of one registrar.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrarPolicy {
    /// Behavior when the registrar is the DNS operator.
    pub operator_dnssec: OperatorDnssec,
    /// DS upload channel for owner-operated domains.
    pub external_ds: ExternalDs,
    /// Per-TLD roles and DS publication.
    pub tlds: BTreeMap<Tld, TldPolicy>,
}

impl RegistrarPolicy {
    /// A policy that sells the given TLDs as an accredited registrar with
    /// no DNSSEC support anywhere — the paper's modal top-20 registrar.
    pub fn no_dnssec(tlds: &[Tld]) -> Self {
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Unsupported,
            tlds: tlds
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        }
    }

    /// The TLD policy, defaulting to unsupported.
    pub fn tld(&self, tld: Tld) -> TldPolicy {
        self.tlds.get(&tld).cloned().unwrap_or_else(TldPolicy::unsupported)
    }

    /// Whether the registrar sells domains in `tld` (as registrar or
    /// reseller).
    pub fn sells(&self, tld: Tld) -> bool {
        !matches!(self.tld(tld).role, TldRole::NoSupport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_on_plans_gates_by_plan() {
        let p = OperatorDnssec::DefaultOnPlans(vec![Plan::Premium]);
        assert!(p.signs_by_default(Plan::Premium));
        assert!(!p.signs_by_default(Plan::Free));
        assert!(p.supported());
    }

    #[test]
    fn opt_in_and_paid_do_not_sign_by_default() {
        assert!(!OperatorDnssec::OptIn { adoption_rate: 0.3 }.signs_by_default(Plan::Free));
        assert!(!OperatorDnssec::Paid {
            cents_per_year: 3500,
            adoption_rate: 0.0002
        }
        .signs_by_default(Plan::Premium));
        assert!(!OperatorDnssec::Unsupported.supported());
    }

    #[test]
    fn external_ds_validation_classification() {
        assert!(ExternalDs::Web { validates: true }.validates());
        assert!(!ExternalDs::Web { validates: false }.validates());
        assert!(ExternalDs::FetchDnskey.validates());
        assert!(!ExternalDs::Ticket.validates());
        assert!(!ExternalDs::Unsupported.supported());
        assert!(ExternalDs::Chat { mistake_rate: 0.1 }.supported());
    }

    #[test]
    fn policy_tld_lookup_defaults_to_unsupported() {
        let policy = RegistrarPolicy::no_dnssec(&[Tld::Com, Tld::Net]);
        assert!(policy.sells(Tld::Com));
        assert!(!policy.sells(Tld::Se));
        assert_eq!(policy.tld(Tld::Se), TldPolicy::unsupported());
    }

    #[test]
    fn tld_policy_constructors() {
        let full = TldPolicy::full(TldRole::Registrar);
        assert!(full.publishes_ds);
        let partial = TldPolicy::without_ds(TldRole::ResellerVia("Ascio".into()));
        assert!(!partial.publishes_ds);
        assert_eq!(partial.role, TldRole::ResellerVia("Ascio".into()));
    }
}
