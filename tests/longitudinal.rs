//! Longitudinal integration: the dated behaviour milestones produce the
//! curve shapes the paper's Figures 4–8 show, measured through the real
//! scanner over focused worlds.

use dsec::ecosystem::{
    ExternalDs, Hosting, OperatorDnssec, Plan, PolicyChange, RegistrarPolicy, SimDate, Tld,
    TldPolicy, TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::scanner::{scan_campaign, CampaignConfig};
use dsec::wire::Name;

fn world(start: SimDate, end: SimDate) -> World {
    World::new(WorldConfig {
        start,
        end,
        key_pool: 2,
        ..WorldConfig::default()
    })
}

fn full_policy() -> RegistrarPolicy {
    RegistrarPolicy {
        operator_dnssec: OperatorDnssec::Default,
        external_ds: ExternalDs::Web { validates: false },
        tlds: ALL_TLDS
            .iter()
            .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
            .collect(),
    }
}

#[test]
fn mass_signing_milestone_produces_the_pcextreme_step() {
    // Figure 7's signature shape: near-zero, then >90% within ~10 days.
    let start = SimDate::from_ymd(2015, 3, 1);
    let end = SimDate::from_ymd(2015, 5, 1);
    let mut w = world(start, end);
    let mut policy = full_policy();
    policy.operator_dnssec = OperatorDnssec::OptIn { adoption_rate: 0.0 };
    let r = w.add_registrar("StepReg", Name::parse("stepreg.nl").unwrap(), policy);
    for i in 0..40 {
        w.purchase(
            r,
            &format!("c{i}"),
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "o@x",
        )
        .unwrap();
    }
    w.add_milestone(
        r,
        SimDate::from_ymd(2015, 3, 15),
        PolicyChange::MassSignHosted {
            tlds: vec![Tld::Com],
            over_days: 10,
        },
    );
    let store = scan_campaign(&mut w, &CampaignConfig::new(end, 5));
    let series = store.series("stepreg.nl.", &[Tld::Com]);
    let before: Vec<f64> = series
        .iter()
        .filter(|p| p.date < SimDate::from_ymd(2015, 3, 15))
        .map(|p| p.full_fraction())
        .collect();
    let after: Vec<f64> = series
        .iter()
        .filter(|p| p.date >= SimDate::from_ymd(2015, 4, 1))
        .map(|p| p.full_fraction())
        .collect();
    assert!(before.iter().all(|&f| f == 0.0), "flat before the step");
    assert!(
        after.iter().all(|&f| f > 0.9),
        "above 90% after the step: {after:?}"
    );
}

#[test]
fn cloudflare_launch_starts_the_dnskey_ramp_with_relay_gap() {
    // Figure 8's shape: zero before launch; afterwards DNSKEY grows while
    // only ≈60% of those domains get a DS.
    let start = SimDate::from_ymd(2015, 10, 1);
    let end = SimDate::from_ymd(2016, 6, 1);
    let mut w = world(start, end);
    let r = w.add_registrar("Retail", Name::parse("retail.net").unwrap(), full_policy());
    let launch = SimDate::from_ymd(2015, 11, 11);
    let cf = w.add_third_party(
        "Cloudflare",
        Name::parse("cfdns.sim").unwrap(),
        Some(launch),
        0.02, // fast ramp so the focused world shows the shape quickly
        0.6,
    );
    for i in 0..120 {
        let d = w
            .purchase(
                r,
                &format!("site{i}"),
                Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "o@x",
            )
            .unwrap();
        w.enroll_third_party(&d, cf).unwrap();
    }
    let store = scan_campaign(&mut w, &CampaignConfig::new(end, 10));
    let series = store.series("cfdns.sim.", &[Tld::Com]);
    let before = series
        .iter()
        .filter(|p| p.date < launch)
        .map(|p| p.dnskey_fraction())
        .fold(0.0f64, f64::max);
    let last = series.last().unwrap();
    assert_eq!(before, 0.0, "nothing signed before universal DNSSEC");
    assert!(
        last.dnskey_fraction() > 0.5,
        "substantial signing after launch: {:.2}",
        last.dnskey_fraction()
    );
    let relay = last.ds_given_dnskey();
    assert!(
        (0.40..0.80).contains(&relay),
        "≈60% of signing owners complete the DS relay, got {relay:.2}"
    );
    // The DNSKEY fraction never decreases (owners don't unsign).
    let fractions: Vec<f64> = series.iter().map(|p| p.dnskey_fraction()).collect();
    assert!(fractions.windows(2).all(|w| w[0] <= w[1] + 1e-9));
}

#[test]
fn partner_switch_migrates_gradually_at_renewals() {
    // Figure 6a's shape: a reseller switches partners; deployments follow
    // domain renewals, spreading over the following year.
    let start = SimDate::from_ymd(2015, 3, 1);
    let end = SimDate::from_ymd(2016, 6, 1);
    let mut w = world(start, end);
    let _old = w.add_registrar(
        "OldPartner",
        Name::parse("oldpartner.net").unwrap(),
        RegistrarPolicy::no_dnssec(&ALL_TLDS),
    );
    let _new = w.add_registrar(
        "NewPartner",
        Name::parse("newpartner.net").unwrap(),
        full_policy(),
    );
    let reseller = w.add_registrar(
        "ResellerCo",
        Name::parse("resellerco.nl").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Unsupported,
            tlds: [(
                Tld::Com,
                TldPolicy::without_ds(TldRole::ResellerVia("OldPartner".into())),
            )]
            .into(),
        },
    );
    // Domains with renewals spread across the year.
    let mut domains = Vec::new();
    for i in 0..24u32 {
        let d = w
            .purchase(
                reseller,
                &format!("shop{i}"),
                Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "o@x",
            )
            .unwrap();
        w.set_expiry(&d, start.plus_days(30 + i * 15));
        domains.push(d);
    }
    // The switch: one month in, migrate at renewal and start publishing.
    w.add_milestone(
        reseller,
        start.plus_days(30),
        PolicyChange::SwitchPartner {
            tld: Tld::Com,
            new_partner: "NewPartner".into(),
            migrate_at_renewal: true,
        },
    );
    let store = scan_campaign(&mut w, &CampaignConfig::new(end, 30));
    let series = store.series("resellerco.nl.", &[Tld::Com]);
    let fractions: Vec<f64> = series.iter().map(|p| p.full_fraction()).collect();
    // Starts at zero (old partner can't publish DS), rises monotonically,
    // ends near complete once every staggered renewal has passed.
    assert_eq!(fractions[0], 0.0);
    assert!(fractions.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    let final_fraction = *fractions.last().unwrap();
    assert!(
        final_fraction > 0.9,
        "all renewals passed by the end: {final_fraction:.2}"
    );
    // Gradual, not a step: some intermediate snapshot sits strictly
    // between 20% and 80%.
    assert!(
        fractions.iter().any(|&f| f > 0.2 && f < 0.8),
        "migration is renewal-paced: {fractions:?}"
    );
}
