//! End-to-end tests of the registrar-compromise attack plane: the
//! abrupt takeover → detection → restore cycle observed through the
//! resolver, property tests pinning that authenticated and validating
//! channels never pass a forged DS, and the traffic plane's
//! `validating_share` default staying byte-identical to the
//! pre-attack-plane tallies.

use proptest::prelude::*;

use dsec::attack::{AttackCampaign, AttackPhase, AttackPlan, AttackVector};
use dsec::crypto::DigestType;
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy, TldRole,
    UploadOutcome, World, WorldConfig,
};
use dsec::resolver::{Resolver, Security};
use dsec::traffic::{run_load, LoadConfig};
use dsec::wire::{DsRdata, Name, RrType};
use dsec::workloads::{build, PopulationConfig};

/// A world with one email-channel registrar sponsoring one
/// correctly-deployed owner-hosted domain.
fn email_world(channel: ExternalDs) -> (World, Name) {
    let mut world = World::new(WorldConfig::default());
    let registrar = world.add_registrar(
        "MailReg",
        Name::parse("mailreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: channel,
            tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
        },
    );
    let victim = world
        .purchase(registrar, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
        .unwrap();
    let ds = world.owner_sign_zone(&victim).unwrap();
    let ok = world
        .upload_ds(
            &victim,
            ds,
            DsSubmission::Email {
                claimed_from: "owner@victim.com".into(),
                actual_from: "owner@victim.com".into(),
            },
        )
        .unwrap_or(UploadOutcome::ChannelUnsupported);
    // Channels that can't carry the legit DS by email get it installed
    // out of band — the takeover tests need a complete chain to break.
    if ok != UploadOutcome::Accepted {
        let sponsor = world.domain(&victim).unwrap().sponsor;
        let ds = world
            .domain(&victim)
            .unwrap()
            .keys
            .as_ref()
            .unwrap()
            .ds(DigestType::Sha256);
        world
            .registry_mut(Tld::Com)
            .set_ds(sponsor, &victim, &[ds])
            .unwrap();
    }
    (world, victim)
}

fn lax_email() -> ExternalDs {
    ExternalDs::Email {
        verifies_sender: false,
        accepts_foreign_sender: false,
        validates: false,
    }
}

fn security_of(world: &World, name: &Name) -> (Security, usize) {
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let resp = resolver
        .resolve(name, RrType::A, world.today.epoch_seconds())
        .unwrap();
    (resp.security, resp.records.len())
}

/// The full lifecycle under the lax channel: the NS takeover lands, a
/// validating resolver flags the forged zone bogus, detection restores
/// the original DS *and* NS, and the chain closes Secure again — with
/// every phase transition and security event on the record.
#[test]
fn abrupt_takeover_detection_and_restore_recovers_secure() {
    let (mut world, victim) = email_world(lax_email());
    let www = victim.child("www").unwrap();
    assert_eq!(security_of(&world, &www).0, Security::Secure);
    let ds_before = world.registry(Tld::Com).ds_of(&victim);
    let ns_before = world.registry(Tld::Com).ns_of(&victim);

    let mut campaign = AttackCampaign::new();
    campaign.schedule(
        victim.clone(),
        AttackPlan::new(
            AttackVector::ForgedNs { stealthy: false },
            world.today.plus_days(1),
        )
        .with_detection(2),
    );
    assert_eq!(
        campaign.state(&victim).unwrap().phase,
        AttackPhase::Scheduled
    );

    // Day 1: the forgery lands; the attacker's authority answers, so a
    // validating client is saved by the now-unmatchable DS.
    world.tick();
    campaign.tick(&mut world);
    assert_eq!(campaign.state(&victim).unwrap().phase, AttackPhase::Captured);
    assert_eq!(campaign.hijacked_zones(), vec![victim.clone()]);
    assert_eq!(world.events.count("forged_ns_accepted"), 1);
    let (security, records) = security_of(&world, &www);
    assert!(matches!(security, Security::Bogus(_)), "{security:?}");
    assert_eq!(records, 0);
    assert_ne!(world.registry(Tld::Com).ns_of(&victim), ns_before);

    // Day 2: still captured.
    world.tick();
    campaign.tick(&mut world);
    assert_eq!(campaign.state(&victim).unwrap().phase, AttackPhase::Captured);

    // Day 3: detection fires — DS and NS both roll back, the attacker
    // zone is withdrawn, and validation closes Secure again.
    world.tick();
    campaign.tick(&mut world);
    assert_eq!(campaign.state(&victim).unwrap().phase, AttackPhase::Restored);
    assert!(campaign.hijacked_zones().is_empty());
    assert_eq!(world.events.count("hijack_detected"), 1);
    assert_eq!(world.events.count("hijack_remediated"), 1);
    assert_eq!(world.registry(Tld::Com).ds_of(&victim), ds_before);
    assert_eq!(world.registry(Tld::Com).ns_of(&victim), ns_before);
    let (security, records) = security_of(&world, &www);
    assert_eq!(security, Security::Secure);
    assert!(records > 0);
}

/// A forged DS through the verified-sender channel is repelled without
/// touching the registry, and the repelled attempt is logged.
#[test]
fn verified_sender_channel_repels_the_campaign() {
    let (mut world, victim) = email_world(ExternalDs::Email {
        verifies_sender: true,
        accepts_foreign_sender: false,
        validates: false,
    });
    let ds_before = world.registry(Tld::Com).ds_of(&victim);
    let mut campaign = AttackCampaign::new();
    campaign.schedule(
        victim.clone(),
        AttackPlan::new(AttackVector::ForgedDs, world.today.plus_days(1)),
    );
    let until = world.today.plus_days(2);
    campaign.advance_to(&mut world, until);
    assert_eq!(campaign.state(&victim).unwrap().phase, AttackPhase::Repelled);
    assert!(campaign.captured().is_empty());
    assert_eq!(world.events.count("attack_repelled"), 1);
    assert_eq!(world.events.count("forged_email_accepted"), 0);
    assert_eq!(world.registry(Tld::Com).ds_of(&victim), ds_before);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// No combination of forged sender fields gets a DS past the
    /// verified-sender email channel: acceptance requires control of the
    /// registrant's actual mailbox, not its spelling in a header.
    #[test]
    fn verified_sender_email_never_accepts_a_forged_ds(
        claimed_local in proptest::string::string_regex("[a-z]{1,12}").unwrap(),
        actual_local in proptest::string::string_regex("[a-z]{1,12}").unwrap(),
        claim_registrant in any::<bool>(),
        key_tag in any::<u16>(),
        digest_byte in any::<u8>(),
    ) {
        let (mut world, victim) = email_world(ExternalDs::Email {
            verifies_sender: true,
            accepts_foreign_sender: false,
            validates: false,
        });
        let registrant = "owner@victim.com";
        // The attacker can forge the header perfectly; what they cannot
        // forge is which mailbox the mail really left from — anything
        // at a domain they control is, by construction, not the
        // registrant's.
        let claimed = if claim_registrant {
            registrant.to_string()
        } else {
            format!("{claimed_local}@somewhere.example")
        };
        let actual = format!("{actual_local}@attacker.example");
        let outcome = world.upload_ds(
            &victim,
            DsRdata { key_tag, algorithm: 8, digest_type: 2, digest: vec![digest_byte; 32] },
            DsSubmission::Email { claimed_from: claimed, actual_from: actual },
        ).unwrap();
        prop_assert_eq!(outcome, UploadOutcome::EmailNotVerified);
        prop_assert_eq!(world.events.count("forged_email_accepted"), 0);
    }

    /// Validating channels (here the web form that checks the DS against
    /// the served DNSKEY) never accept a DS that matches no served key —
    /// whatever rdata the attacker invents.
    #[test]
    fn validating_web_form_never_accepts_an_unmatched_ds(
        key_tag in any::<u16>(),
        algorithm in any::<u8>(),
        digest_type in 1u8..3,
        digest in proptest::collection::vec(any::<u8>(), 20..33),
    ) {
        let (mut world, victim) = email_world(ExternalDs::Web { validates: true });
        let outcome = world.upload_ds(
            &victim,
            DsRdata { key_tag, algorithm, digest_type, digest },
            DsSubmission::Web,
        ).unwrap();
        // A random digest colliding with the real key's is ~2^-160;
        // anything but a rejection is a real bug.
        prop_assert_eq!(outcome, UploadOutcome::RejectedInvalid);
    }

    /// The NS-change path enforces the same sender authentication as the
    /// DS path: a verified-sender channel never redelegates for a forged
    /// mail, whatever the header claims.
    #[test]
    fn verified_sender_email_never_accepts_a_forged_ns(
        actual_local in proptest::string::string_regex("[a-z]{1,12}").unwrap(),
        claim_registrant in any::<bool>(),
    ) {
        let (mut world, victim) = email_world(ExternalDs::Email {
            verifies_sender: true,
            accepts_foreign_sender: false,
            validates: false,
        });
        let registrant = "owner@victim.com";
        let actual = format!("{actual_local}@attacker.example");
        let ns_before = world.registry(Tld::Com).ns_of(&victim);
        let evil = Name::parse("ns1.mallory-dns.example").unwrap();
        let outcome = world.submit_ns_change(
            &victim,
            std::slice::from_ref(&evil),
            DsSubmission::Email {
                claimed_from: if claim_registrant { registrant.into() } else { actual.clone() },
                actual_from: actual,
            },
        ).unwrap();
        prop_assert_eq!(outcome, UploadOutcome::EmailNotVerified);
        prop_assert_eq!(world.registry(Tld::Com).ns_of(&victim), ns_before);
        prop_assert_eq!(world.events.count("forged_ns_accepted"), 0);
    }
}

/// `validating_share` defaults to a fully validating fleet: explicit 1.0
/// (and an empty captured list) must leave every tally byte-identical to
/// the untouched default config — the attack plane is invisible until
/// someone turns the knob.
#[test]
fn full_validating_share_is_byte_identical_to_the_default() {
    let pw = build(&PopulationConfig::tiny());
    let base = LoadConfig::default().with_queries(2_000).with_threads(4).with_seed(7);
    let default_run = run_load(&pw.world, &base);
    let explicit_run = run_load(
        &pw.world,
        &base.clone().with_validating_share(1.0).with_captured(Vec::new()),
    );
    assert_eq!(default_run.outcomes, explicit_run.outcomes);
    assert_eq!(default_run.by_registrar, explicit_run.by_registrar);
    assert_eq!(default_run.by_operator, explicit_run.by_operator);
    assert_eq!(default_run.histogram, explicit_run.histogram);
    assert_eq!(default_run.resolver, explicit_run.resolver);
    assert_eq!(default_run.outcomes.hijacked, 0);
    assert_eq!(default_run.outcomes.saved_by_validation, 0);
    assert_eq!(
        default_run.summary_line(),
        explicit_run.summary_line(),
        "summary rendering unchanged at share 1.0"
    );
}
