//! The authority-plane wire-response cache, end to end:
//!
//! * cached answers go stale-free across every zone mutation edge — a
//!   re-sign with fresh keys, a rollover phase entry (CDS publication
//!   and completion), and a DS swap at the parent registry;
//! * a same-seed campaign produces byte-identical CSVs with the
//!   response cache on vs off, and across 1 vs 8 scan threads;
//! * a registrar-channel takeover redelegates on the very next query —
//!   the wire cache never serves pre-takeover bytes across the capture
//!   or the restore.

use std::collections::BTreeSet;

use dsec::attack::{AttackCampaign, AttackPlan, AttackVector};
use dsec::crypto::DigestType;
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy, TldRole,
    World, WorldConfig,
};
use dsec::resolver::{Resolver, Security};
use dsec::scanner::{scan_campaign, CampaignConfig, LongitudinalStore};
use dsec::wire::{Message, Name, RData, RrType};
use dsec::workloads::{build, PopulationConfig};

fn operators(store: &LongitudinalStore) -> BTreeSet<String> {
    store
        .snapshots()
        .iter()
        .flat_map(|s| s.cells.keys().map(|(op, _)| op.clone()))
        .collect()
}

/// The lexically-first signed domain: deterministic across same-seed
/// worlds, guaranteed to have keys and a parent DS.
fn signed_domain(world: &World) -> Name {
    world
        .domains()
        .filter(|d| d.is_signed())
        .map(|d| d.name.clone())
        .min_by_key(|n| n.to_canonical().to_string())
        .expect("tiny population has signed domains")
}

fn dnskey_tags(resp: &Message) -> BTreeSet<u16> {
    resp.answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Dnskey(k) => Some(k.key_tag()),
            _ => None,
        })
        .collect()
}

#[test]
fn resign_with_fresh_keys_is_visible_immediately() {
    let mut pw = build(&PopulationConfig::tiny());
    let domain = signed_domain(&pw.world);

    // Prime the wire cache: the second identical query is the memcpy path.
    let first = pw.world.query_domain(&domain, RrType::Dnskey).expect("answer");
    let repeat = pw.world.query_domain(&domain, RrType::Dnskey).expect("answer");
    assert_eq!(first.answers, repeat.answers, "cache hit must echo the answer");
    let (hits, _) = pw.world.network.response_cache_stats();
    assert!(hits > 0, "repeat query must be served from the wire cache");

    let old_tags = dnskey_tags(&first);
    pw.world.roll_keys_abrupt(&domain).expect("re-sign with new keys");

    // The re-sign bumped the zone generation; the cached wire answer must
    // not survive it.
    let after = pw.world.query_domain(&domain, RrType::Dnskey).expect("answer");
    let new_keys = pw.world.domain(&domain).unwrap().keys.clone().unwrap();
    let expected: BTreeSet<u16> = [new_keys.ksk_tag(), new_keys.zsk_tag()].into();
    assert_eq!(dnskey_tags(&after), expected, "served DNSKEYs match the new keys");
    assert_ne!(dnskey_tags(&after), old_tags, "rollover changed the key tags");
}

#[test]
fn rollover_phase_entry_is_visible_immediately() {
    let mut pw = build(&PopulationConfig::tiny());
    let domain = signed_domain(&pw.world);

    // Prime the negative answer: no CDS is published yet, and the NODATA
    // response is cached like any other.
    let before = pw.world.query_domain(&domain, RrType::Cds).expect("answer");
    assert!(
        !before.answers.iter().any(|r| matches!(r.rdata, RData::Cds(_))),
        "no CDS before the rollover starts"
    );
    let _ = pw.world.query_domain(&domain, RrType::Cds);

    // Phase 1: CDS published, signed by the still-chained old keys. The
    // cached NODATA must be invalidated by the same zone edit.
    let new_ds = pw.world.prepare_rollover(&domain).expect("phase 1");
    let during = pw.world.query_domain(&domain, RrType::Cds).expect("answer");
    let served_cds: Vec<_> = during
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Cds(ds) => Some(ds.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(served_cds.len(), 1, "exactly one CDS after phase 1");
    assert_eq!(served_cds[0].digest, new_ds.digest, "CDS carries the new DS");

    // Prime the DNSKEY answer under the old keys, then complete: the new
    // key set must be served on the very next query.
    let _ = pw.world.query_domain(&domain, RrType::Dnskey);
    pw.world.complete_rollover(&domain).expect("phase 2");
    let after = pw.world.query_domain(&domain, RrType::Dnskey).expect("answer");
    assert!(
        dnskey_tags(&after).contains(&new_ds.key_tag),
        "completed rollover serves the DNSKEY the new DS points at"
    );
}

#[test]
fn ds_swap_at_the_registry_is_visible_immediately() {
    let mut pw = build(&PopulationConfig::tiny());
    let domain = signed_domain(&pw.world);
    let d = pw.world.domain(&domain).unwrap();
    let (tld, sponsor) = (d.tld, d.sponsor);
    let keys = d.keys.clone().unwrap();

    // Prime the parent-side DS answer at the registry's nameserver.
    let ns = tld.registry_ns();
    let query = Message::query(1, domain.clone(), RrType::Ds, true);
    let before = pw.world.network.query(&ns, &query).expect("registry answers");
    let old_digests: BTreeSet<Vec<u8>> = before
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Ds(ds) => Some(ds.digest.clone()),
            _ => None,
        })
        .collect();
    assert!(!old_digests.is_empty(), "signed domain has a parent DS");
    let repeat = pw.world.network.query(&ns, &query).expect("registry answers");
    assert_eq!(before.answers, repeat.answers);

    // Swap the DS to a SHA-384 digest of the same KSK. `set_ds` edits the
    // TLD zone through the same mutation path as everything else, so the
    // cached wire answer must be invalidated.
    let swapped = keys.ds(DigestType::Sha384);
    pw.world
        .registry_mut(tld)
        .set_ds(sponsor, &domain, std::slice::from_ref(&swapped))
        .expect("sponsor may swap the DS");
    let after = pw.world.network.query(&ns, &query).expect("registry answers");
    let new_digests: BTreeSet<Vec<u8>> = after
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Ds(ds) => Some(ds.digest.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        new_digests,
        BTreeSet::from([swapped.digest.clone()]),
        "swapped DS served immediately"
    );
    assert_ne!(new_digests, old_digests, "digest actually changed");
}

/// A takeover must be visible on the very next query, and the rollback
/// just as fast: neither the registry's cached referral nor the old
/// authority's cached answers may leak across the NS swap in either
/// direction.
#[test]
fn hijacked_delegation_never_serves_pre_takeover_cached_bytes() {
    let mut world = World::new(WorldConfig::default());
    let registrar = world.add_registrar(
        "LaxMail",
        Name::parse("laxmail.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Email {
                verifies_sender: false,
                accepts_foreign_sender: false,
                validates: false,
            },
            tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
        },
    );
    let victim = world
        .purchase(registrar, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
        .unwrap();
    let ds = world.owner_sign_zone(&victim).unwrap();
    world
        .upload_ds(
            &victim,
            ds,
            DsSubmission::Email {
                claimed_from: "owner@victim.com".into(),
                actual_from: "owner@victim.com".into(),
            },
        )
        .unwrap();
    let www = victim.child("www").unwrap();
    let a_of = |world: &World, anchors: bool| {
        let anchors = if anchors { world.trust_anchor() } else { Vec::new() };
        let resp = Resolver::new(world.network.clone(), anchors)
            .resolve(&www, RrType::A, world.today.epoch_seconds())
            .unwrap();
        let a: Vec<RData> = resp
            .records
            .iter()
            .filter(|r| matches!(r.rdata, RData::A(_)))
            .map(|r| r.rdata.clone())
            .collect();
        (resp.security, a)
    };

    // Prime every wire cache on the resolution path (registry referral +
    // victim authority answer), and pin the pre-takeover bytes.
    let (security, original_a) = a_of(&world, true);
    assert_eq!(security, Security::Secure);
    assert!(!original_a.is_empty());
    let _ = a_of(&world, true);
    let (hits, _) = world.network.response_cache_stats();
    assert!(hits > 0, "repeat resolution runs on the wire cache");

    // The forged redelegation lands.
    let mut campaign = AttackCampaign::new();
    campaign.schedule(
        victim.clone(),
        AttackPlan::new(
            AttackVector::ForgedNs { stealthy: false },
            world.today.plus_days(1),
        )
        .with_detection(1),
    );
    world.tick();
    campaign.tick(&mut world);
    assert_eq!(campaign.hijacked_zones(), vec![victim.clone()]);

    // Next query, same cache-primed network: a non-validating client
    // gets the attacker's bytes — never the pre-takeover answer — and a
    // validating one gets nothing at all.
    let (nv_security, hijacked_a) = a_of(&world, false);
    assert_eq!(nv_security, Security::Insecure);
    assert!(!hijacked_a.is_empty(), "the forged zone answers");
    assert!(
        hijacked_a.iter().all(|r| !original_a.contains(r)),
        "pre-takeover cached bytes must not survive the takeover: {hijacked_a:?}"
    );
    let (security, bogus_a) = a_of(&world, true);
    assert!(matches!(security, Security::Bogus(_)));
    assert!(bogus_a.is_empty());

    // Detection restores DS + NS; the next query must serve the original
    // bytes again, not the attacker's now-stale answers.
    world.tick();
    campaign.tick(&mut world);
    let (security, restored_a) = a_of(&world, true);
    assert_eq!(security, Security::Secure);
    assert_eq!(restored_a, original_a, "restore serves the pre-attack bytes");
}

#[test]
fn campaign_csvs_are_byte_identical_with_cache_on_off_and_across_threads() {
    let mut cached = build(&PopulationConfig::tiny());
    let mut uncached = build(&PopulationConfig::tiny());
    let mut threaded = build(&PopulationConfig::tiny());
    let until = cached.world.today.plus_days(21);

    uncached.world.set_response_cache(false);

    let on = scan_campaign(&mut cached.world, &CampaignConfig::new(until, 7));
    let off = scan_campaign(&mut uncached.world, &CampaignConfig::new(until, 7));
    let wide = scan_campaign(
        &mut threaded.world,
        &CampaignConfig::new(until, 7).with_threads(8),
    );

    let (hits, _) = cached.world.network.response_cache_stats();
    assert!(hits > 0, "the cached campaign actually used the wire cache");
    let (off_hits, _) = uncached.world.network.response_cache_stats();
    assert_eq!(off_hits, 0, "the disabled cache served nothing");

    let ops = operators(&on);
    assert_eq!(ops, operators(&off));
    assert_eq!(ops, operators(&wide));
    for op in &ops {
        assert_eq!(on.to_csv(op), off.to_csv(op), "cache on/off legacy CSV of {op}");
        assert_eq!(
            on.to_csv_extended(op),
            off.to_csv_extended(op),
            "cache on/off extended CSV of {op}"
        );
        assert_eq!(on.to_csv(op), wide.to_csv(op), "1-vs-8-thread legacy CSV of {op}");
        assert_eq!(
            on.to_csv_extended(op),
            wide.to_csv_extended(op),
            "1-vs-8-thread extended CSV of {op}"
        );
    }
}
