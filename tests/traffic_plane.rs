//! End-to-end tests of the user-traffic plane: deterministic load
//! generation, RFC 4035 outcome accounting with registrar/operator
//! attribution, shared-cache bounding, and composition with the fault
//! plane.

use dsec::ecosystem::Tld;
use dsec::traffic::{run_load, LoadConfig, TrafficPopulation};
use dsec::workloads::{build, PopulationConfig};

fn tiny_world() -> dsec::workloads::PaperWorld {
    build(&PopulationConfig::tiny())
}

#[test]
fn fault_free_load_reports_zero_bogus_and_accounts_every_query() {
    let pw = tiny_world();
    let config = LoadConfig::tiny().with_threads(2);
    let report = run_load(&pw.world, &config);

    assert_eq!(report.total, config.queries);
    assert_eq!(report.outcomes.bogus, 0, "fault-free run must not see bogus");
    assert_eq!(report.outcomes.total(), report.total, "every query classified");

    // Attribution is complete: registrar and operator counts both
    // partition the stream.
    let registrar_total: u64 = report.by_registrar.values().map(|c| c.total()).sum();
    let operator_total: u64 = report.by_operator.values().map(|c| c.total()).sum();
    assert_eq!(registrar_total, report.total);
    assert_eq!(operator_total, report.total);
    assert!(report.by_registrar.len() > 1, "more than one registrar queried");

    // The Zipf head repeats names, so the shared cache must have served
    // some of the stream; counters surface in the summary line.
    assert!(report.resolver.cache_hits > 0);
    assert!(report.resolver.cache_misses > 0);
    assert!(report.cache_entries <= report.cache_capacity);
    let line = report.summary_line();
    assert!(line.contains("hit rate"), "{line}");
    assert!(line.contains(&format!("{} hits", report.resolver.cache_hits)), "{line}");

    // Latency telemetry is populated, and the seeded RTT jitter keeps
    // the percentiles strictly separated — no collapsing onto one bucket.
    assert_eq!(report.histogram.count(), report.total);
    assert!(
        report.histogram.p50() < report.histogram.p99()
            && report.histogram.p99() < report.histogram.p999(),
        "degenerate percentiles: p50 {} p99 {} p999 {}",
        report.histogram.p50(),
        report.histogram.p99(),
        report.histogram.p999(),
    );
    assert!(report.sim_elapsed_ms > 0);
}

#[test]
fn same_seed_same_threads_reproduces_outcomes_and_histogram() {
    let pw = tiny_world();
    let config = LoadConfig::tiny().with_threads(3).with_seed(0xDECAF);
    let first = run_load(&pw.world, &config);
    let second = run_load(&pw.world, &config);

    assert_eq!(first.outcomes, second.outcomes);
    assert_eq!(first.by_registrar, second.by_registrar);
    assert_eq!(first.by_operator, second.by_operator);
    assert_eq!(first.histogram, second.histogram, "identical latency buckets");
    assert_eq!(first.resolver, second.resolver, "identical cache/attempt counters");
    assert_eq!(first.sim_elapsed_ms, second.sim_elapsed_ms);
}

#[test]
fn outcome_counts_are_invariant_across_thread_counts() {
    let pw = tiny_world();
    let one = run_load(&pw.world, &LoadConfig::tiny().with_threads(1));
    let eight = run_load(&pw.world, &LoadConfig::tiny().with_threads(8));

    assert_eq!(one.outcomes, eight.outcomes);
    assert_eq!(one.by_registrar, eight.by_registrar);
    assert_eq!(one.by_operator, eight.by_operator);
    // Key-hash sharding makes even the latency buckets and cache
    // counters line up while the capacity bound is never hit: a query's
    // hit/miss depends only on the per-key stream, not the interleaving.
    assert_eq!(one.histogram, eight.histogram);
    assert_eq!(one.resolver.cache_hits, eight.resolver.cache_hits);
    assert_eq!(one.resolver.cache_misses, eight.resolver.cache_misses);
}

#[test]
fn striped_cache_matches_single_shard_at_the_resolver_level() {
    // The lock-striped cache must be observationally identical to a
    // single-lock cache: same answers, same hit/miss counters, same
    // entry count — striping may only change who holds which lock.
    let pw = tiny_world();
    let population = TrafficPopulation::from_world(&pw.world);
    let now = pw.world.today.epoch_seconds();
    let trust = pw.world.trust_anchor();

    let run = |shards: usize| {
        let cache = std::sync::Arc::new(dsec::resolver::Cache::with_shards(4096, shards));
        assert_eq!(cache.shard_count(), shards);
        let resolver = dsec::resolver::Resolver::new(pw.world.network.clone(), trust.clone())
            .with_shared_cache(cache.clone());
        let mut answers = Vec::new();
        // Two passes over the same names: the second must be all hits.
        for _ in 0..2 {
            for site in population.sites.iter().take(64) {
                answers.push(resolver.resolve_cached(&site.name, dsec::wire::RrType::A, now));
                answers.push(resolver.resolve_cached(&site.www, dsec::wire::RrType::A, now));
            }
        }
        (answers, resolver.stats(), cache.len())
    };

    let (answers_1, stats_1, len_1) = run(1);
    let (answers_16, stats_16, len_16) = run(16);
    assert_eq!(answers_1, answers_16, "answers independent of shard count");
    assert_eq!(stats_1, stats_16, "hit/miss counters independent of shard count");
    assert_eq!(len_1, len_16);
    assert!(stats_1.cache_hits >= 128, "second pass served from cache");
}

#[test]
fn shared_cache_stays_within_its_capacity_bound() {
    let pw = tiny_world();
    let mut config = LoadConfig::tiny().with_threads(2);
    config.cache_capacity = 32;
    config.evict_interval = 64;
    let report = run_load(&pw.world, &config);
    assert!(
        report.cache_entries <= 32,
        "cache ended at {} entries",
        report.cache_entries
    );
    assert_eq!(report.outcomes.bogus, 0);
    assert_eq!(report.outcomes.total(), report.total);
}

#[test]
fn mismatched_ds_injection_attributes_bogus_to_the_right_registrar() {
    let mut pw = tiny_world();

    // The most popular signed .nl site: guaranteed query volume (head of
    // the .nl Zipf) and an existing chain to break.
    let population = TrafficPopulation::from_world(&pw.world);
    let victim = population.ranked[&Tld::Nl]
        .iter()
        .map(|&i| &population.sites[i as usize])
        .find(|site| {
            pw.world
                .domain(&site.name)
                .map(|d| d.is_signed())
                .unwrap_or(false)
        })
        .expect("a signed .nl site exists in the tiny population")
        .clone();

    // Abrupt key replacement without a DS update: the registry now
    // publishes a DS matching no served DNSKEY — every query for the
    // victim goes bogus at the validator.
    pw.world
        .roll_keys_abrupt(&victim.name)
        .expect("victim is signed");

    let report = run_load(&pw.world, &LoadConfig::tiny().with_threads(2));
    assert!(
        report.outcomes.bogus > 0,
        "the head .nl site must be queried and fail validation"
    );
    let victim_counts = report.by_registrar[&victim.registrar];
    assert_eq!(
        victim_counts.bogus, report.outcomes.bogus,
        "all bogus queries attribute to {}",
        victim.registrar
    );
    for (registrar, counts) in &report.by_registrar {
        if registrar != &victim.registrar {
            assert_eq!(counts.bogus, 0, "{registrar} wrongly blamed");
        }
    }
    let operator_counts = report.by_operator[&victim.operator];
    assert_eq!(operator_counts.bogus, report.outcomes.bogus);
}

#[test]
fn load_composes_with_the_fault_plane_and_stays_deterministic() {
    let pw = tiny_world();
    let clean = run_load(&pw.world, &LoadConfig::tiny().with_threads(2));

    pw.world
        .network
        .faults()
        .set_global_profile(dsec::authserver::FaultProfile::mixed(0.05));
    let config = LoadConfig::tiny().with_threads(2);
    pw.world.network.faults().enable(0xFA017);
    let faulty = run_load(&pw.world, &config);
    // Re-seeding resets the plane's per-(server, query) attempt counters,
    // so an identically configured run replays the same fault schedule.
    pw.world.network.faults().enable(0xFA017);
    let again = run_load(&pw.world, &config);

    // Chaos surfaces as retries/timeouts and a heavier latency tail, not
    // as validation failures.
    assert!(faulty.resolver.timeouts > 0, "fault plane injected timeouts");
    assert_eq!(faulty.outcomes.bogus, 0);
    assert!(
        faulty.histogram.p999() >= clean.histogram.p999(),
        "faults cannot shrink the tail: {} < {}",
        faulty.histogram.p999(),
        clean.histogram.p999()
    );

    // Same seed + same thread count stays deterministic under faults:
    // outcomes, attribution, and total simulated work replay exactly.
    // (Bucket-exact histograms need a single worker here — the plane's
    // per-(server, qname) attempt counters are shared across workers, so
    // an injected fault can land on a different query of the same
    // exchange key depending on interleaving.)
    assert_eq!(faulty.outcomes, again.outcomes);
    assert_eq!(faulty.by_registrar, again.by_registrar);
    assert_eq!(faulty.resolver, again.resolver);
    assert_eq!(faulty.histogram.count(), again.histogram.count());
    assert_eq!(faulty.histogram.total_ms(), again.histogram.total_ms());

    pw.world.network.faults().enable(0xFA017);
    let single = run_load(&pw.world, &LoadConfig::tiny().with_threads(1));
    pw.world.network.faults().enable(0xFA017);
    let single_again = run_load(&pw.world, &LoadConfig::tiny().with_threads(1));
    assert_eq!(single.histogram, single_again.histogram);
    assert_eq!(single.outcomes, single_again.outcomes);
}
