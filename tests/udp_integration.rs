//! The sans-I/O stack bound to real sockets: a whole signed world served
//! over loopback UDP, resolved and validated from wire bytes.

use std::net::UdpSocket;
use std::time::Duration;

use dsec::dnssec::authenticate_dnskeys;
use dsec::ecosystem::{
    ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy, TldRole, World,
    WorldConfig, ALL_TLDS,
};
use dsec::wire::{Message, Name, RData, Rcode, Record, RrSet, RrType};

/// Serves one authority on a UDP socket for `answers` datagrams.
fn serve(
    authority: std::sync::Arc<dsec::authserver::Authority>,
    answers: usize,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
    let addr = socket.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        for _ in 0..answers {
            let Ok((len, peer)) = socket.recv_from(&mut buf) else {
                return;
            };
            if let Some(reply) = authority.handle_datagram(&buf[..len]) {
                let _ = socket.send_to(&reply, peer);
            }
        }
    });
    (addr, handle)
}

fn ask(addr: std::net::SocketAddr, query: &Message) -> Message {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
    socket
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    socket.connect(addr).unwrap();
    socket.send(&query.to_wire()).unwrap();
    let mut buf = [0u8; 4096];
    let len = socket.recv(&mut buf).expect("reply within timeout");
    Message::from_wire(&buf[..len]).expect("well-formed reply")
}

#[test]
fn world_zone_validates_over_real_udp() {
    // Build a world, deploy one domain, then serve the *TLD registry* and
    // the *customer operator* over two real UDP sockets and walk the
    // chain from wire bytes alone.
    let mut world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let registrar = world.add_registrar(
        "UdpReg",
        Name::parse("udpreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let domain = world
        .purchase(
            registrar,
            "overudp",
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "o@x",
        )
        .unwrap();
    let now = world.today.epoch_seconds();

    // Socket 1: the .com registry (DS + referral answers).
    let (registry_addr, registry_thread) = serve(world.registry(Tld::Com).authority(), 2);
    // Socket 2: the customer operator (DNSKEY + A answers).
    let operator = world.registrar(registrar).operator;
    let (op_addr, op_thread) = serve(world.operator(operator).authority(), 2);

    // DS from the parent, over the wire.
    let resp = ask(registry_addr, &Message::query(1, domain.clone(), RrType::Ds, true));
    let ds: Vec<_> = resp
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Ds(ds) => Some(ds.clone()),
            _ => None,
        })
        .collect();
    assert!(!ds.is_empty(), "parent serves the DS over UDP");

    // Referral for a name below the cut carries NS in the authority.
    let www = domain.child("www").unwrap();
    let resp = ask(registry_addr, &Message::query(2, www.clone(), RrType::A, true));
    assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Ns));

    // DNSKEY from the child, over the wire; authenticate against the DS.
    let resp = ask(op_addr, &Message::query(3, domain.clone(), RrType::Dnskey, true));
    let dnskeys: Vec<Record> = resp
        .answers
        .iter()
        .filter(|r| r.rtype() == RrType::Dnskey)
        .cloned()
        .collect();
    let sigs: Vec<_> = resp
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
            _ => None,
        })
        .collect();
    let rrset = RrSet::new(dnskeys).unwrap();
    let trusted = authenticate_dnskeys(&domain, &rrset, &sigs, &ds, now)
        .expect("chain link validates from wire bytes");
    assert_eq!(trusted.len(), 2);

    // And the final answer resolves with its signature attached.
    let resp = ask(op_addr, &Message::query(4, www, RrType::A, true));
    assert_eq!(resp.rcode, Rcode::NoError);
    assert!(resp.answers.iter().any(|r| r.rtype() == RrType::A));
    assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));

    registry_thread.join().unwrap();
    op_thread.join().unwrap();
}

#[test]
fn malformed_udp_datagrams_get_formerr_or_silence() {
    let world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let (addr, thread) = serve(world.registry(Tld::Com).authority(), 1);
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    socket.connect(addr).unwrap();
    socket.send(&[0xDE, 0xAD, 0x01, 0x02, 0x03]).unwrap();
    let mut buf = [0u8; 512];
    let len = socket.recv(&mut buf).unwrap();
    let resp = Message::from_wire(&buf[..len]).unwrap();
    assert_eq!(resp.id, 0xDEAD);
    assert_eq!(resp.rcode, Rcode::FormErr);
    thread.join().unwrap();
}

#[test]
fn truncated_udp_falls_back_to_tcp() {
    use std::io::{Read, Write};
    use std::net::TcpListener;

    // A zone whose TXT answer exceeds the 512-byte no-EDNS UDP limit.
    let authority = std::sync::Arc::new(dsec::authserver::Authority::new());
    let mut zone = dsec::wire::Zone::new(Name::parse("big.com").unwrap());
    for i in 0..6u8 {
        zone.add(Record::new(
            Name::parse("big.com").unwrap(),
            60,
            RData::Txt(vec![vec![b'x'; 200], vec![i]]),
        ))
        .unwrap();
    }
    authority.upsert_zone(zone);

    // UDP leg: no EDNS → truncated.
    let (udp_addr, udp_thread) = serve(authority.clone(), 1);
    let query = Message::query(1, Name::parse("big.com").unwrap(), RrType::Txt, false);
    let resp = ask(udp_addr, &query);
    assert!(resp.flags.truncated, "server must signal TC over UDP");
    assert!(resp.answers.is_empty());
    udp_thread.join().unwrap();

    // TCP leg: RFC 1035 §4.2.2 framing carries the full answer.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let tcp_addr = listener.local_addr().unwrap();
    let serving = authority.clone();
    let tcp_thread = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        if let Some(reply) = serving.handle_tcp_request(&buf) {
            stream.write_all(&reply).unwrap();
        }
    });
    let mut stream = std::net::TcpStream::connect(tcp_addr).unwrap();
    let wire = query.to_wire();
    stream
        .write_all(&(wire.len() as u16).to_be_bytes())
        .unwrap();
    stream.write_all(&wire).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let declared = u16::from_be_bytes([reply[0], reply[1]]) as usize;
    assert_eq!(declared, reply.len() - 2);
    let resp = Message::from_wire(&reply[2..]).unwrap();
    assert!(!resp.flags.truncated);
    assert_eq!(resp.answers.len(), 6, "full answer over TCP");
    tcp_thread.join().unwrap();
}
