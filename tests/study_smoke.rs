//! End-to-end study smoke test: the whole pipeline (population → probe →
//! campaign → experiments) on a tiny population, checking the
//! scale-independent invariants.

use dsec::core::{run_study, StudyConfig};
use dsec::ecosystem::ALL_TLDS;
use dsec::scanner::Metric;

#[test]
fn tiny_study_produces_every_artifact() {
    let output = run_study(&StudyConfig::tiny());

    // All seventeen experiments exist, with artifacts where expected.
    let ids: Vec<&str> = output.experiments.iter().map(|e| e.id).collect();
    assert_eq!(
        ids,
        vec![
            "E-T1", "E-F3", "E-T2", "E-T3", "E-T4", "E-F4", "E-F5", "E-F6", "E-F7", "E-F8",
            "E-S52", "E-P1", "E-U1", "E-R2", "E-K1", "E-A1", "E-A2"
        ]
    );
    for e in &output.experiments {
        assert!(!e.checkpoints.is_empty(), "{} has checkpoints", e.id);
        if e.id.starts_with("E-T") || e.id.starts_with("E-F") {
            assert!(!e.artifact.is_empty(), "{} has an artifact", e.id);
        }
    }

    // The probe-based experiments are scale-independent: they must hold
    // exactly even on the tiny world.
    for id in ["E-T2", "E-T3", "E-T4"] {
        let e = output.experiments.iter().find(|e| e.id == id).unwrap();
        assert!(e.reproduced(), "{e}");
    }

    // Snapshot conservation: the population is static over the window,
    // so every snapshot accounts for the same domains. (The probe buys
    // its own domains only after the campaign, so the world's final
    // count exceeds the scanned population by the probe purchases.)
    let scanned: u64 = ALL_TLDS
        .iter()
        .map(|&t| output.store.snapshots()[0].tld_totals(t).domains)
        .sum();
    for snapshot in output.store.snapshots() {
        let total: u64 = ALL_TLDS
            .iter()
            .map(|&t| snapshot.tld_totals(t).domains)
            .sum();
        assert_eq!(total, scanned);
    }
    assert!(output.paper_world.world.domain_count() as u64 >= scanned);

    // Deployment counts are internally consistent in the final snapshot.
    let last = output.final_snapshot();
    for tld in ALL_TLDS {
        let stats = last.tld_totals(tld);
        assert!(stats.with_dnskey <= stats.domains);
        assert!(
            stats.fully_deployed + stats.partially_deployed + stats.misconfigured
                <= stats.with_dnskey
        );
    }

    // The concentration ordering from Figure 3 holds directionally even
    // at tiny scale: full deployment is more concentrated than the
    // overall market.
    let all_rank = dsec::scanner::operators_to_cover(
        last,
        &dsec::reports::GTLDS,
        Metric::All,
        0.5,
    );
    let full_rank = dsec::scanner::operators_to_cover(
        last,
        &dsec::reports::GTLDS,
        Metric::Full,
        0.5,
    );
    if full_rank > 0 && all_rank > 0 {
        assert!(
            full_rank <= all_rank,
            "full deployment at least as concentrated: full {full_rank} vs all {all_rank}"
        );
    }

    // Markdown renders every section.
    let md = output.to_markdown();
    for id in ids {
        assert!(md.contains(&format!("## {id}")), "{id} in markdown");
    }
}

#[test]
fn studies_are_deterministic() {
    let a = run_study(&StudyConfig {
        run_probe: false,
        ..StudyConfig::tiny()
    });
    let b = run_study(&StudyConfig {
        run_probe: false,
        ..StudyConfig::tiny()
    });
    assert_eq!(
        a.paper_world.world.domain_count(),
        b.paper_world.world.domain_count()
    );
    let sa = a.final_snapshot();
    let sb = b.final_snapshot();
    for tld in ALL_TLDS {
        assert_eq!(sa.tld_totals(tld), sb.tld_totals(tld), "{tld}");
    }
}
