//! Chaos campaigns: scan campaigns running over a degraded network.
//!
//! Acceptance for the fault-injection plane:
//! * faults disabled → per-(operator, TLD) classification identical to
//!   the fault-oblivious scanner, with zero degradation counts;
//! * a seeded drop/SERVFAIL mix → the campaign completes, records
//!   nonzero unreachable/indeterminate counts, and never loses domains;
//! * same seed → byte-identical snapshots, regardless of thread count.

use std::sync::Arc;

use dsec::authserver::{FaultProfile, OutageScenario};
use dsec::ecosystem::{Tld, World, ALL_TLDS};
use dsec::resolver::{BreakerPolicy, Cache, Resolver};
use dsec::scanner::{operator_of, scan_campaign, CampaignConfig, OperatorStats};
use dsec::traffic::{run_load_shared, LoadConfig};
use dsec::wire::{Name, RrType};
use dsec::workloads::{build, PopulationConfig};

const CHAOS_SEED: u64 = 0xC4A05;

/// The biggest DNS operator's key and nameserver fleet — the outage
/// victim whose domains are guaranteed a healthy share of the Zipf head.
fn largest_operator(world: &World) -> (String, Vec<Name>) {
    let mut sizes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut fleets: std::collections::BTreeMap<String, std::collections::BTreeSet<Name>> =
        std::collections::BTreeMap::new();
    for d in world.domains() {
        let ns = world.registry(d.tld).ns_of(&d.name);
        let Some(op) = operator_of(&ns) else { continue };
        let key = op.to_string();
        *sizes.entry(key.clone()).or_insert(0) += 1;
        fleets.entry(key).or_default().extend(ns);
    }
    let victim = sizes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(k, _)| k.clone())
        .expect("populated world");
    let fleet = fleets.remove(&victim).unwrap_or_default().into_iter().collect();
    (victim, fleet)
}

fn total_degraded(stats: &OperatorStats) -> u64 {
    stats.unreachable + stats.indeterminate
}

#[test]
fn disabled_faults_match_fault_oblivious_scan() {
    // Same deterministic population built twice; one scans with the
    // retry pass enabled (a no-op without faults), one with it off.
    let mut with_retries = build(&PopulationConfig::tiny());
    let mut without_retries = build(&PopulationConfig::tiny());
    let until = with_retries.world.today.plus_days(14);

    let store_a = scan_campaign(&mut with_retries.world, &CampaignConfig::new(until, 7));
    let store_b = scan_campaign(
        &mut without_retries.world,
        &CampaignConfig::new(until, 7).with_retries(1, 0),
    );

    assert_eq!(store_a.snapshots().len(), store_b.snapshots().len());
    for (a, b) in store_a.snapshots().iter().zip(store_b.snapshots()) {
        assert_eq!(a.cells, b.cells, "classification identical on {}", a.date);
        assert!(
            a.cells.values().all(|s| total_degraded(s) == 0),
            "no degradation recorded without faults"
        );
    }
}

#[test]
fn chaos_campaign_completes_and_records_degradation() {
    let mut pw = build(&PopulationConfig::tiny());

    // 5% drop/SERVFAIL mix everywhere…
    pw.world.fault_plane().enable(CHAOS_SEED);
    pw.world
        .fault_plane()
        .set_global_profile(FaultProfile::mixed(0.05));
    // …plus one operator whose whole fleet is down, so unreachable
    // outcomes survive even the retry pass.
    let victim = pw.world.registry(Tld::Com).delegations()[0].clone();
    let dead_fleet = pw.world.registry(Tld::Com).ns_of(&victim);
    assert!(!dead_fleet.is_empty());
    for ns in &dead_fleet {
        pw.world.fault_plane().set_down(ns, true);
    }

    let until = pw.world.today.plus_days(14);
    let store = scan_campaign(&mut pw.world, &CampaignConfig::new(until, 7));

    let population: u64 = ALL_TLDS
        .iter()
        .map(|&t| store.snapshots()[0].tld_totals(t).domains)
        .sum();
    let mut degraded_total = 0u64;
    for snapshot in store.snapshots() {
        // Degraded observations are recorded, not dropped: every domain
        // still appears in exactly one cell.
        let domains: u64 = ALL_TLDS
            .iter()
            .map(|&t| snapshot.tld_totals(t).domains)
            .sum();
        assert_eq!(domains, population, "no domains lost on {}", snapshot.date);
        degraded_total += snapshot
            .cells
            .values()
            .map(total_degraded)
            .sum::<u64>();
        let unreachable: u64 = snapshot.cells.values().map(|s| s.unreachable).sum();
        assert!(
            unreachable > 0,
            "dead fleet shows up as unreachable on {}",
            snapshot.date
        );
    }
    assert!(degraded_total > 0);
    assert!(
        pw.world.fault_plane().stats().total() > 0,
        "faults actually fired"
    );
}

#[test]
fn outage_load_serves_stale_during_window_and_recovers() {
    let pw = build(&PopulationConfig::tiny());
    let world = &pw.world;
    let base = world.today.epoch_seconds();
    let queries: u64 = 2_048;
    let qps: u32 = 4;
    let span = (queries / qps as u64) as u32;
    let (victim_key, fleet) = largest_operator(world);

    world.fault_plane().enable(CHAOS_SEED);
    OutageScenario::operator_outage("mid-campaign", fleet, base + span, base + 2 * span + 60)
        .install(world.fault_plane());

    let mut config = LoadConfig::default()
        .with_queries(queries)
        .with_seed(CHAOS_SEED)
        .with_max_stale(7_200)
        .with_breaker(BreakerPolicy {
            failure_threshold: 3,
            probe_interval_s: 30,
        });
    config.sim_qps = qps;
    let cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(7_200));

    // Phase 1 — clean warm-up: nothing stale, nothing failing.
    let warm = run_load_shared(world, &config, Arc::clone(&cache));
    assert_eq!(warm.outcomes.stale, 0, "no stale serves before the outage");
    assert_eq!(warm.outcomes.servfail, 0, "clean network answers everything");

    // Phase 2 — the same stream inside the outage window: expired victim
    // entries are served stale, the breaker trips, and the victim
    // operator's warm-cache availability survives the dead fleet.
    let outage = run_load_shared(world, &config.clone().with_now_offset(span), Arc::clone(&cache));
    assert!(outage.outcomes.stale > 0, "stale serves during the window");
    assert!(outage.resolver.stale_hits > 0);
    assert!(outage.resolver.breaker_trips > 0, "breaker tripped on the dead fleet");
    let victim = outage
        .by_operator
        .get(&victim_key)
        .copied()
        .unwrap_or_default();
    assert!(victim.total() > 0, "victim operator got queries");
    assert!(
        victim.availability() >= 0.90,
        "victim warm-cache availability {:.3} under sustained outage",
        victim.availability()
    );

    // Phase 3 — after the window: upstream answers again, stale serves
    // stop, and nothing is left failing.
    let recovered = run_load_shared(world, &config.clone().with_now_offset(2 * span + 120), cache);
    assert_eq!(recovered.outcomes.stale, 0, "no stale serves after recovery");
    assert_eq!(recovered.outcomes.servfail, 0, "full recovery after the window");
}

#[test]
fn breaker_trips_during_outage_and_recloses_after() {
    let pw = build(&PopulationConfig::tiny());
    let world = &pw.world;
    let base = world.today.epoch_seconds();
    let (_, fleet) = largest_operator(world);
    let victim_domain = world
        .domains()
        .find(|d| {
            let ns = world.registry(d.tld).ns_of(&d.name);
            ns.first().is_some_and(|first| fleet.contains(first))
        })
        .map(|d| d.name.clone())
        .expect("victim operator hosts a domain");

    world.fault_plane().enable(CHAOS_SEED);
    OutageScenario::operator_outage("op-down", fleet, base + 100, base + 400)
        .install(world.fault_plane());

    let resolver = Resolver::new(world.network.clone(), world.trust_anchor()).with_breaker(
        BreakerPolicy {
            failure_threshold: 2,
            probe_interval_s: 60,
        },
    );

    // Before the window: resolves cleanly, breaker stays closed.
    assert!(resolver.resolve(&victim_domain, RrType::A, base).is_ok());
    assert_eq!(resolver.breaker().expect("breaker armed").open_count(), 0);

    // Inside the window: failures accumulate, the breaker trips, and
    // subsequent resolves short-circuit instead of hammering the fleet.
    for i in 0..6 {
        let _ = resolver.resolve(&victim_domain, RrType::A, base + 150 + i);
    }
    let set = resolver.breaker().expect("breaker armed");
    assert!(set.open_count() >= 1, "breaker open during the outage");
    let stats = resolver.stats();
    assert!(stats.breaker_trips >= 1);
    assert!(stats.breaker_short_circuits > 0, "open breaker skipped attempts");

    // After the window: the scheduled half-open probe reaches the healthy
    // fleet again and the breaker re-closes.
    assert!(resolver.resolve(&victim_domain, RrType::A, base + 500).is_ok());
    assert_eq!(set.open_count(), 0, "breaker re-closed after recovery");
    let labels: Vec<&str> = set.transitions().iter().map(|e| e.transition.label()).collect();
    assert!(labels.contains(&"trip"), "{labels:?}");
    assert!(labels.contains(&"half-open probe"), "{labels:?}");
    assert!(labels.contains(&"close"), "{labels:?}");
}

#[test]
fn same_seed_chaos_runs_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut pw = build(&PopulationConfig::tiny());
        pw.world.fault_plane().enable(CHAOS_SEED);
        pw.world
            .fault_plane()
            .set_global_profile(FaultProfile::mixed(0.05));
        let until = pw.world.today.plus_days(14);
        scan_campaign(
            &mut pw.world,
            &CampaignConfig::new(until, 7).with_threads(threads),
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.snapshots().len(), parallel.snapshots().len());
    for (a, b) in sequential.snapshots().iter().zip(parallel.snapshots()) {
        assert_eq!(a.date, b.date);
        assert_eq!(a.cells, b.cells, "fault decisions independent of threads");
    }
}
