//! Chaos campaigns: scan campaigns running over a degraded network.
//!
//! Acceptance for the fault-injection plane:
//! * faults disabled → per-(operator, TLD) classification identical to
//!   the fault-oblivious scanner, with zero degradation counts;
//! * a seeded drop/SERVFAIL mix → the campaign completes, records
//!   nonzero unreachable/indeterminate counts, and never loses domains;
//! * same seed → byte-identical snapshots, regardless of thread count.

use dsec::authserver::FaultProfile;
use dsec::ecosystem::{Tld, ALL_TLDS};
use dsec::scanner::{scan_campaign, CampaignConfig, OperatorStats};
use dsec::workloads::{build, PopulationConfig};

const CHAOS_SEED: u64 = 0xC4A05;

fn total_degraded(stats: &OperatorStats) -> u64 {
    stats.unreachable + stats.indeterminate
}

#[test]
fn disabled_faults_match_fault_oblivious_scan() {
    // Same deterministic population built twice; one scans with the
    // retry pass enabled (a no-op without faults), one with it off.
    let mut with_retries = build(&PopulationConfig::tiny());
    let mut without_retries = build(&PopulationConfig::tiny());
    let until = with_retries.world.today.plus_days(14);

    let store_a = scan_campaign(&mut with_retries.world, &CampaignConfig::new(until, 7));
    let store_b = scan_campaign(
        &mut without_retries.world,
        &CampaignConfig::new(until, 7).with_retries(1, 0),
    );

    assert_eq!(store_a.snapshots().len(), store_b.snapshots().len());
    for (a, b) in store_a.snapshots().iter().zip(store_b.snapshots()) {
        assert_eq!(a.cells, b.cells, "classification identical on {}", a.date);
        assert!(
            a.cells.values().all(|s| total_degraded(s) == 0),
            "no degradation recorded without faults"
        );
    }
}

#[test]
fn chaos_campaign_completes_and_records_degradation() {
    let mut pw = build(&PopulationConfig::tiny());

    // 5% drop/SERVFAIL mix everywhere…
    pw.world.fault_plane().enable(CHAOS_SEED);
    pw.world
        .fault_plane()
        .set_global_profile(FaultProfile::mixed(0.05));
    // …plus one operator whose whole fleet is down, so unreachable
    // outcomes survive even the retry pass.
    let victim = pw.world.registry(Tld::Com).delegations()[0].clone();
    let dead_fleet = pw.world.registry(Tld::Com).ns_of(&victim);
    assert!(!dead_fleet.is_empty());
    for ns in &dead_fleet {
        pw.world.fault_plane().set_down(ns, true);
    }

    let until = pw.world.today.plus_days(14);
    let store = scan_campaign(&mut pw.world, &CampaignConfig::new(until, 7));

    let population: u64 = ALL_TLDS
        .iter()
        .map(|&t| store.snapshots()[0].tld_totals(t).domains)
        .sum();
    let mut degraded_total = 0u64;
    for snapshot in store.snapshots() {
        // Degraded observations are recorded, not dropped: every domain
        // still appears in exactly one cell.
        let domains: u64 = ALL_TLDS
            .iter()
            .map(|&t| snapshot.tld_totals(t).domains)
            .sum();
        assert_eq!(domains, population, "no domains lost on {}", snapshot.date);
        degraded_total += snapshot
            .cells
            .values()
            .map(total_degraded)
            .sum::<u64>();
        let unreachable: u64 = snapshot.cells.values().map(|s| s.unreachable).sum();
        assert!(
            unreachable > 0,
            "dead fleet shows up as unreachable on {}",
            snapshot.date
        );
    }
    assert!(degraded_total > 0);
    assert!(
        pw.world.fault_plane().stats().total() > 0,
        "faults actually fired"
    );
}

#[test]
fn same_seed_chaos_runs_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut pw = build(&PopulationConfig::tiny());
        pw.world.fault_plane().enable(CHAOS_SEED);
        pw.world
            .fault_plane()
            .set_global_profile(FaultProfile::mixed(0.05));
        let until = pw.world.today.plus_days(14);
        scan_campaign(
            &mut pw.world,
            &CampaignConfig::new(until, 7).with_threads(threads),
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.snapshots().len(), parallel.snapshots().len());
    for (a, b) in sequential.snapshots().iter().zip(parallel.snapshots()) {
        assert_eq!(a.date, b.date);
        assert_eq!(a.cells, b.cells, "fault decisions independent of threads");
    }
}
