//! Property tests over the ecosystem: arbitrary customer action sequences
//! must preserve the world's structural invariants, and the deployment
//! classification must remain internally consistent at every step.

use proptest::prelude::*;

use dsec::dnssec::{classify, DeploymentStatus};
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, TldPolicy,
    TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::wire::{DsRdata, Name};

/// One customer-visible action.
#[derive(Debug, Clone)]
enum Action {
    Purchase { label_idx: u8, registrar: u8, tld_idx: u8 },
    EnableDnssec { domain_idx: u8 },
    SwitchToOwner { domain_idx: u8 },
    OwnerSign { domain_idx: u8 },
    UploadRealDs { domain_idx: u8 },
    UploadGarbageDs { domain_idx: u8 },
    Tick,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(label_idx, registrar, tld_idx)| {
            Action::Purchase {
                label_idx,
                registrar,
                tld_idx,
            }
        }),
        any::<u8>().prop_map(|domain_idx| Action::EnableDnssec { domain_idx }),
        any::<u8>().prop_map(|domain_idx| Action::SwitchToOwner { domain_idx }),
        any::<u8>().prop_map(|domain_idx| Action::OwnerSign { domain_idx }),
        any::<u8>().prop_map(|domain_idx| Action::UploadRealDs { domain_idx }),
        any::<u8>().prop_map(|domain_idx| Action::UploadGarbageDs { domain_idx }),
        Just(Action::Tick),
    ]
}

fn build_world() -> (World, Vec<dsec::ecosystem::RegistrarId>) {
    let mut world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let full = world.add_registrar(
        "PropFull",
        Name::parse("propfull.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let sloppy = world.add_registrar(
        "PropSloppy",
        Name::parse("propsloppy.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::OptIn { adoption_rate: 0.1 },
            external_ds: ExternalDs::Web { validates: false },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let none = world.add_registrar(
        "PropNone",
        Name::parse("propnone.net").unwrap(),
        RegistrarPolicy::no_dnssec(&ALL_TLDS),
    );
    (world, vec![full, sloppy, none])
}

fn check_invariants(world: &World, domains: &[Name]) {
    let now = world.today.epoch_seconds();
    for domain in domains {
        let d = world.domain(domain).expect("purchased domains persist");
        let tld = d.tld;
        // Every domain stays delegated with a registered sponsor.
        let registry = world.registry(tld);
        assert!(!registry.ns_of(domain).is_empty(), "{domain} delegated");
        assert!(registry.sponsor_of(domain).is_some(), "{domain} sponsored");
        // Classification never lands in an impossible state.
        let status = classify(domain, &world.observation_of(domain), now);
        match status {
            DeploymentStatus::FullyDeployed => {
                assert!(d.is_signed(), "{domain}: full implies keys held");
                assert!(!registry.ds_of(domain).is_empty());
            }
            DeploymentStatus::PartiallyDeployed => {
                assert!(registry.ds_of(domain).is_empty(), "{domain}: partial means no DS");
            }
            DeploymentStatus::NotDeployed => {}
            DeploymentStatus::Misconfigured(_) => {
                // Only reachable here via a garbage DS upload, which needs
                // a DS in the registry.
                assert!(!registry.ds_of(domain).is_empty());
            }
            DeploymentStatus::InsecureUnsupported => {
                panic!("{domain}: no unsupported algorithms in this world")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn arbitrary_action_sequences_preserve_invariants(
        actions in proptest::collection::vec(action(), 1..24)
    ) {
        let (mut world, registrars) = build_world();
        let mut domains: Vec<Name> = Vec::new();
        for action in actions {
            match action {
                Action::Purchase { label_idx, registrar, tld_idx } => {
                    let tld = ALL_TLDS[tld_idx as usize % ALL_TLDS.len()];
                    let id = registrars[registrar as usize % registrars.len()];
                    if let Ok(domain) = world.purchase(
                        id,
                        &format!("prop{label_idx}"),
                        tld,
                        Hosting::Registrar { plan: Plan::Free },
                        "o@x",
                    ) {
                        domains.push(domain);
                    }
                }
                Action::EnableDnssec { domain_idx } => {
                    if let Some(domain) = pick(&domains, domain_idx) {
                        let _ = world.enable_dnssec(&domain);
                    }
                }
                Action::SwitchToOwner { domain_idx } => {
                    if let Some(domain) = pick(&domains, domain_idx) {
                        let _ = world.switch_to_owner_hosting(&domain);
                    }
                }
                Action::OwnerSign { domain_idx } => {
                    if let Some(domain) = pick(&domains, domain_idx) {
                        let _ = world.owner_sign_zone(&domain);
                    }
                }
                Action::UploadRealDs { domain_idx } => {
                    if let Some(domain) = pick(&domains, domain_idx) {
                        if let Some(keys) = world.domain(&domain).and_then(|d| d.keys.clone()) {
                            let ds = keys.ds(dsec::crypto::DigestType::Sha256);
                            let _ = world.upload_ds(&domain, ds, DsSubmission::Web);
                        }
                    }
                }
                Action::UploadGarbageDs { domain_idx } => {
                    if let Some(domain) = pick(&domains, domain_idx) {
                        let garbage = DsRdata {
                            key_tag: 7,
                            algorithm: 8,
                            digest_type: 2,
                            digest: vec![7; 32],
                        };
                        let _ = world.upload_ds(&domain, garbage, DsSubmission::Web);
                    }
                }
                Action::Tick => world.tick(),
            }
            check_invariants(&world, &domains);
        }
    }
}

fn pick(domains: &[Name], idx: u8) -> Option<Name> {
    if domains.is_empty() {
        None
    } else {
        Some(domains[idx as usize % domains.len()].clone())
    }
}
