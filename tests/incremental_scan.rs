//! The incremental scan pipeline, end to end:
//!
//! * a multi-day cached campaign produces byte-identical legacy and
//!   extended CSVs to the uncached campaign when faults are off;
//! * `force_full` re-scans everything while still refreshing the cache;
//! * warm snapshots issue far fewer network queries than cold ones;
//! * `take_with_options` is thread-count deterministic on a faulted
//!   world;
//! * `retry_rounds: 1` performs a real second observation and
//!   `retry_rounds: 0` disables the retry pass.

use std::collections::BTreeSet;

use dsec::authserver::{Fault, FaultProfile};
use dsec::ecosystem::{Tld, ALL_TLDS};
use dsec::scanner::{
    scan_campaign, scan_campaign_cached, CampaignConfig, LongitudinalStore, ScanCache,
    ScanOptions, Snapshot,
};
use dsec::workloads::{build, PopulationConfig};

const CHAOS_SEED: u64 = 0x15CA7;

fn operators(store: &LongitudinalStore) -> BTreeSet<String> {
    store
        .snapshots()
        .iter()
        .flat_map(|s| s.cells.keys().map(|(op, _)| op.clone()))
        .collect()
}

#[test]
fn cached_campaign_csvs_are_byte_identical_to_uncached() {
    let mut cached_world = build(&PopulationConfig::tiny());
    let mut uncached_world = build(&PopulationConfig::tiny());
    let until = cached_world.world.today.plus_days(28);

    let mut cache = ScanCache::new();
    let cached = scan_campaign_cached(
        &mut cached_world.world,
        &CampaignConfig::new(until, 7),
        &mut cache,
    );
    let uncached = scan_campaign(
        &mut uncached_world.world,
        &CampaignConfig::new(until, 7).with_cache(false),
    );

    assert_eq!(cached.snapshots().len(), uncached.snapshots().len());
    for (a, b) in cached.snapshots().iter().zip(uncached.snapshots()) {
        assert_eq!(a.cells, b.cells, "cells identical on {}", a.date);
    }
    // The acceptance criterion is on the exported artifacts: every
    // operator's legacy and extended CSVs must match byte for byte.
    let ops = operators(&cached);
    assert_eq!(ops, operators(&uncached));
    for op in &ops {
        assert_eq!(cached.to_csv(op), uncached.to_csv(op), "legacy CSV of {op}");
        assert_eq!(
            cached.to_csv_extended(op),
            uncached.to_csv_extended(op),
            "extended CSV of {op}"
        );
    }
    // And the cache must actually have carried results across days.
    let stats = cache.stats();
    assert!(stats.hits > 0, "cache reused results: {stats:?}");
    assert!(stats.entries > 0);
}

#[test]
fn force_full_rescans_but_matches_the_cached_result() {
    let pw = build(&PopulationConfig::tiny());
    let mut cache = ScanCache::new();
    let options = ScanOptions::default();

    let warm_ready = Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut cache);
    let hits_before = cache.stats().hits;

    let forced = Snapshot::take_cached(
        &pw.world,
        &ALL_TLDS,
        &ScanOptions {
            force_full: true,
            ..options
        },
        &mut cache,
    );
    // Same day, no changes: a forced full re-scan observes the same cells
    // but never consults the cache.
    assert_eq!(forced.cells, warm_ready.cells);
    assert_eq!(cache.stats().hits, hits_before, "force_full bypasses lookups");

    // The forced pass refreshed entries, so the next scan is warm again.
    let warm = Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut cache);
    assert_eq!(warm.cells, warm_ready.cells);
    assert!(cache.stats().hits > hits_before);
}

#[test]
fn warm_snapshot_issues_fewer_queries_than_cold() {
    let mut pw = build(&PopulationConfig::tiny());
    let mut cache = ScanCache::new();
    let options = ScanOptions::default();

    let before_cold = pw.world.network.query_count();
    Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut cache);
    let cold = pw.world.network.query_count() - before_cold;

    pw.world.tick();
    let before_warm = pw.world.network.query_count();
    Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut cache);
    let warm = pw.world.network.query_count() - before_warm;

    assert!(cold > 0);
    assert!(
        warm * 2 < cold,
        "one day of churn re-queries a small minority: warm={warm} cold={cold}"
    );
}

#[test]
fn faulted_snapshot_is_identical_across_thread_counts() {
    let take = |threads: usize| {
        let pw = build(&PopulationConfig::tiny());
        pw.world.fault_plane().enable(CHAOS_SEED);
        pw.world
            .fault_plane()
            .set_global_profile(FaultProfile::mixed(0.05));
        // A permanently dead fleet so unreachable outcomes flow through
        // the (parallelized) retry pass too.
        let victim = pw.world.registry(Tld::Com).delegations()[0].clone();
        for ns in pw.world.registry(Tld::Com).ns_of(&victim) {
            pw.world.fault_plane().set_down(&ns, true);
        }
        Snapshot::take_with_options(
            &pw.world,
            &ALL_TLDS,
            &ScanOptions {
                threads,
                ..ScanOptions::default()
            },
        )
    };
    let sequential = take(1);
    let parallel = take(4);
    assert_eq!(sequential.date, parallel.date);
    assert_eq!(
        sequential.cells, parallel.cells,
        "retry ordering and fault draws independent of thread count"
    );
    assert!(
        sequential.cells.values().any(|s| s.unreachable > 0),
        "the dead fleet exercised the retry pass"
    );
}

#[test]
fn retry_rounds_one_rescans_and_zero_disables() {
    // Script exactly one SERVFAIL per nameserver of the first .com
    // domain: a 1-round first pass consumes them all and ends
    // indeterminate, so only a retry pass can classify the domain.
    let scan = |retry_rounds: u32| {
        let pw = build(&PopulationConfig::tiny());
        pw.world.fault_plane().enable(CHAOS_SEED);
        let victim = pw.world.registry(Tld::Com).delegations()[0].clone();
        for ns in pw.world.registry(Tld::Com).ns_of(&victim) {
            pw.world.fault_plane().script(&ns, [Fault::ServFail]);
        }
        Snapshot::take_with_options(
            &pw.world,
            &[Tld::Com],
            &ScanOptions {
                retry_rounds,
                ..ScanOptions::default()
            },
        )
    };

    let disabled = scan(0);
    let indeterminate: u64 = disabled.cells.values().map(|s| s.indeterminate).sum();
    assert_eq!(
        indeterminate, 1,
        "retry_rounds: 0 keeps the failed first-pass outcome"
    );

    let single_round = scan(1);
    let indeterminate: u64 = single_round.cells.values().map(|s| s.indeterminate).sum();
    assert_eq!(
        indeterminate, 0,
        "retry_rounds: 1 is a real second observation"
    );
    // Once the scripted faults are consumed the re-scan sees the true
    // state: identical to a fault-free scan of the same world.
    let clean = Snapshot::take_with_options(
        &build(&PopulationConfig::tiny()).world,
        &[Tld::Com],
        &ScanOptions::default(),
    );
    assert_eq!(single_round.cells, clean.cells);
}
