//! Cross-crate integration: the full chain of trust from the root zone to
//! a customer domain, exercised through the ecosystem, served by the
//! authserver, and judged by the validating resolver — including the
//! failure injections that make DNSSEC domains go dark.

use dsec::dnssec::validate::ValidationError;
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, RegistrarId, Tld,
    TldPolicy, TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::resolver::{Resolver, Security};
use dsec::wire::{DsRdata, Name, Rcode, RrType};

fn world() -> World {
    World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    })
}

fn full_registrar(w: &mut World) -> RegistrarId {
    w.add_registrar(
        "FullReg",
        Name::parse("fullreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: false },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    )
}

#[test]
fn signed_domain_resolves_securely_in_every_tld() {
    let mut w = world();
    let r = full_registrar(&mut w);
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    for tld in ALL_TLDS {
        let domain = w
            .purchase(r, "secure", tld, Hosting::Registrar { plan: Plan::Free }, "o@x")
            .unwrap();
        let www = domain.child("www").unwrap();
        let answer = resolver
            .resolve(&www, RrType::A, w.today.epoch_seconds())
            .unwrap();
        assert_eq!(answer.security, Security::Secure, "{tld}");
        assert_eq!(
            answer.chain,
            vec![Name::root(), tld.zone(), domain],
            "{tld} walks root → TLD → SLD"
        );
    }
}

#[test]
fn unsigned_domain_resolves_insecurely() {
    let mut w = world();
    let r = w.add_registrar(
        "PlainReg",
        Name::parse("plainreg.net").unwrap(),
        RegistrarPolicy::no_dnssec(&ALL_TLDS),
    );
    // Hosted unsigned domains have no materialized zone, so probe the
    // registry-level state through an owner-hosted unsigned domain.
    let domain = w
        .purchase(r, "plain", Tld::Com, Hosting::Owner, "o@x")
        .unwrap();
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let answer = resolver
        .resolve(&www, RrType::A, w.today.epoch_seconds())
        .unwrap();
    assert_eq!(answer.security, Security::Insecure);
    assert_eq!(answer.records.len(), 1);
}

#[test]
fn partial_deployment_is_insecure_not_bogus() {
    // DNSKEY+RRSIG published, DS never uploaded (the paper's partial
    // state): resolvable, but without DNSSEC's benefit.
    let mut w = world();
    let r = full_registrar(&mut w);
    let domain = w
        .purchase(r, "partial", Tld::Com, Hosting::Owner, "o@x")
        .unwrap();
    w.owner_sign_zone(&domain).unwrap(); // DS intentionally not conveyed
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let answer = resolver
        .resolve(&www, RrType::A, w.today.epoch_seconds())
        .unwrap();
    assert_eq!(answer.security, Security::Insecure);
    assert_eq!(answer.records.len(), 1);
}

#[test]
fn garbage_ds_takes_domain_offline_for_validators() {
    // A registrar that accepts anything as a DS (10 of 12 web forms in
    // the paper) lets a copy/paste error break the whole domain.
    let mut w = world();
    let r = full_registrar(&mut w);
    let domain = w
        .purchase(r, "broken", Tld::Com, Hosting::Owner, "o@x")
        .unwrap();
    w.owner_sign_zone(&domain).unwrap();
    let garbage = DsRdata {
        key_tag: 1,
        algorithm: 8,
        digest_type: 2,
        digest: b"wrong clipboard contents".to_vec(),
    };
    assert_eq!(
        w.upload_ds(&domain, garbage, DsSubmission::Web).unwrap(),
        dsec::ecosystem::UploadOutcome::Accepted
    );
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let answer = resolver
        .resolve(&www, RrType::A, w.today.epoch_seconds())
        .unwrap();
    assert_eq!(answer.rcode, Rcode::ServFail);
    assert!(matches!(
        answer.security,
        Security::Bogus(ValidationError::DsPointsNowhere { .. })
    ));
    // A non-validating client (no trust anchor) still resolves — exactly
    // the partial-failure mode the paper describes.
    let plain = Resolver::new(w.network.clone(), Vec::new());
    let answer = plain
        .resolve(&www, RrType::A, w.today.epoch_seconds())
        .unwrap();
    assert_eq!(answer.records.len(), 1);
}

#[test]
fn signature_expiry_is_detected_later_in_time() {
    let mut w = world();
    let r = full_registrar(&mut w);
    let domain = w
        .purchase(r, "aging", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x")
        .unwrap();
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let now = w.today.epoch_seconds();
    assert_eq!(
        resolver.resolve(&www, RrType::A, now).unwrap().security,
        Security::Secure
    );
    // Far beyond every signature's validity (sim end + 400 days margin).
    let far = now + 3000 * 86_400;
    let answer = resolver.resolve(&www, RrType::A, far).unwrap();
    assert_eq!(answer.rcode, Rcode::ServFail);
}

#[test]
fn ds_removal_downgrades_to_insecure() {
    // Removing the DS (e.g. before a transfer) makes the domain insecure
    // but reachable — the correct rollback path.
    let mut w = world();
    let r = full_registrar(&mut w);
    let domain = w
        .purchase(r, "rollback", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x")
        .unwrap();
    let sponsor = w.domain(&domain).unwrap().sponsor;
    w.registry_mut(Tld::Com).remove_ds(sponsor, &domain).unwrap();
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let answer = resolver
        .resolve(&www, RrType::A, w.today.epoch_seconds())
        .unwrap();
    assert_eq!(answer.security, Security::Insecure);
    assert_eq!(answer.records.len(), 1);
}

#[test]
fn third_party_relay_gap_visible_to_resolver() {
    // Cloudflare-style: operator signs, owner forgets the DS relay. The
    // resolver sees an insecure (not secure!) domain even though the
    // operator did everything right.
    let mut w = world();
    let r = full_registrar(&mut w);
    let cf = w.add_third_party(
        "Cf",
        Name::parse("cf-dns.sim").unwrap(),
        Some(w.today),
        0.0,
        0.6,
    );
    let domain = w
        .purchase(r, "relayless", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x")
        .unwrap();
    w.enroll_third_party(&domain, cf).unwrap();
    let ds = w.third_party_enable_dnssec(&domain).unwrap();
    let resolver = Resolver::new(w.network.clone(), w.trust_anchor());
    let www = domain.child("www").unwrap();
    let now = w.today.epoch_seconds();
    assert_eq!(
        resolver.resolve(&www, RrType::A, now).unwrap().security,
        Security::Insecure,
        "signed at the operator but unchained"
    );
    // Owner finally relays the DS → secure.
    w.upload_ds(&domain, ds, DsSubmission::Web).unwrap();
    assert_eq!(
        resolver.resolve(&www, RrType::A, now).unwrap().security,
        Security::Secure
    );
}
