//! Name ↔ NameId equivalence for the columnar ecosystem store.
//!
//! The registry's delegation state moved from `BTreeMap<Name, …>` maps
//! into the dense NameId-indexed [`DomainTable`]; the Name-keyed API
//! (`delegations`, `sponsor_of`, `generation_of`) survived as a facade
//! over the columns. These properties pin the facade to a literal
//! Name-keyed reference model:
//!
//! * any sequence of registry mutations (add / remove / transfer /
//!   DS-swap / NS-change, including rejected ones) leaves the Name-keyed
//!   API, the columnar enumeration, and a shadow `BTreeMap` model in
//!   exact agreement — names, canonical order, sponsors, generations,
//!   and the generation-persists-across-removal rule;
//! * any world mutated by an arbitrary customer action sequence produces
//!   byte-identical campaign CSVs through the in-memory store and the
//!   streamed (spill + replay) store.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, Plan, Registry, RegistrarId,
    RegistrarPolicy, Tld, TldPolicy, TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::scanner::{scan_campaign_cached, scan_campaign_streamed, CampaignConfig, ScanCache};
use dsec::wire::{DsRdata, Name};

const FROM: u32 = 1_420_070_400;
const UNTIL: u32 = FROM + 1000 * 86_400;

/// The Name-keyed reference model: what the old `BTreeMap`-backed
/// registry stored per delegation. `sponsor: None` models a removed
/// delegation whose row (and generation) the table must retain.
#[derive(Default)]
struct ShadowRow {
    sponsor: Option<RegistrarId>,
    generation: u64,
}

#[derive(Debug, Clone)]
enum RegistryAction {
    Add { label: u8, registrar: u8 },
    Remove { idx: u8 },
    Transfer { idx: u8, to: u8 },
    SwapDs { idx: u8, tag: u8 },
    DropDs { idx: u8 },
    ChangeNs { idx: u8 },
}

fn registry_action() -> impl Strategy<Value = RegistryAction> {
    prop_oneof![
        (any::<u8>(), any::<u8>())
            .prop_map(|(label, registrar)| RegistryAction::Add { label, registrar }),
        any::<u8>().prop_map(|idx| RegistryAction::Remove { idx }),
        (any::<u8>(), any::<u8>()).prop_map(|(idx, to)| RegistryAction::Transfer { idx, to }),
        (any::<u8>(), any::<u8>()).prop_map(|(idx, tag)| RegistryAction::SwapDs { idx, tag }),
        any::<u8>().prop_map(|idx| RegistryAction::DropDs { idx }),
        any::<u8>().prop_map(|idx| RegistryAction::ChangeNs { idx }),
    ]
}

/// A small label pool so sequences re-register removed names — the case
/// where a reused row must keep counting generations upward.
fn pool_name(label: u8) -> Name {
    Name::parse(&format!("eq{}.com", label % 12)).unwrap()
}

/// Registrar 99 is deliberately unaccredited: actions routed through it
/// must be rejected and leave both stores untouched.
fn actor(to: u8) -> RegistrarId {
    RegistrarId([1, 2, 99][to as usize % 3])
}

fn check_against_shadow(registry: &Registry, shadow: &BTreeMap<Name, ShadowRow>) {
    let live: Vec<(&Name, RegistrarId, u64)> = shadow
        .iter()
        .filter_map(|(name, row)| row.sponsor.map(|s| (name, s, row.generation)))
        .collect();

    // Name-keyed API: same names, canonical (Name-sorted) order.
    let names: Vec<Name> = live.iter().map(|(n, _, _)| (*n).clone()).collect();
    assert_eq!(registry.delegations(), names, "delegations() diverged from shadow");

    // Columnar enumeration: same names, same order, same generations.
    let columnar: Vec<(Name, u64)> = registry
        .delegations_columnar()
        .map(|(_, name, generation)| (name.clone(), generation))
        .collect();
    let expected: Vec<(Name, u64)> =
        live.iter().map(|(n, _, g)| ((*n).clone(), *g)).collect();
    assert_eq!(columnar, expected, "delegations_columnar() diverged from shadow");

    // Point lookups, live and dead.
    for (name, row) in shadow {
        assert_eq!(registry.sponsor_of(name), row.sponsor, "{name}: sponsor");
        assert_eq!(registry.generation_of(name), row.generation, "{name}: generation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn registry_mutations_match_name_keyed_shadow(
        actions in proptest::collection::vec(registry_action(), 1..48)
    ) {
        let mut rng = StdRng::seed_from_u64(0xC01);
        let mut registry = Registry::new(Tld::Com, &mut rng, FROM, UNTIL);
        registry.accredit(RegistrarId(1));
        registry.accredit(RegistrarId(2));

        let mut shadow: BTreeMap<Name, ShadowRow> = BTreeMap::new();
        let ns = [Name::parse("ns1.host.net").unwrap()];

        for action in actions {
            match action {
                RegistryAction::Add { label, registrar } => {
                    let name = pool_name(label);
                    let by = actor(registrar);
                    let ok = registry.add_delegation(by, &name, &ns).is_ok();
                    let row = shadow.entry(name).or_default();
                    let expect = by != RegistrarId(99) && row.sponsor.is_none();
                    assert_eq!(ok, expect, "add_delegation acceptance");
                    if ok {
                        row.sponsor = Some(by);
                        row.generation += 1;
                    }
                }
                RegistryAction::Remove { idx } => {
                    let name = pool_name(idx);
                    // Route through the current sponsor so liveness is the
                    // only thing deciding acceptance.
                    let by = shadow
                        .get(&name)
                        .and_then(|r| r.sponsor)
                        .unwrap_or(RegistrarId(1));
                    let ok = registry.remove_delegation(by, &name).is_ok();
                    let row = shadow.entry(name).or_default();
                    assert_eq!(ok, row.sponsor.is_some(), "remove_delegation acceptance");
                    if ok {
                        // The generation column survives removal and keeps
                        // counting (stale-cache poison protection).
                        row.sponsor = None;
                        row.generation += 1;
                    }
                }
                RegistryAction::Transfer { idx, to } => {
                    let name = pool_name(idx);
                    let from = shadow
                        .get(&name)
                        .and_then(|r| r.sponsor)
                        .unwrap_or(RegistrarId(1));
                    let to = actor(to);
                    let ok = registry.transfer(from, to, &name).is_ok();
                    let row = shadow.entry(name).or_default();
                    let expect = row.sponsor.is_some() && to != RegistrarId(99);
                    assert_eq!(ok, expect, "transfer acceptance");
                    if ok {
                        // Transfers are invisible on the wire: sponsor
                        // changes, generation must not.
                        row.sponsor = Some(to);
                    }
                }
                RegistryAction::SwapDs { idx, tag } => {
                    let name = pool_name(idx);
                    let by = shadow
                        .get(&name)
                        .and_then(|r| r.sponsor)
                        .unwrap_or(RegistrarId(1));
                    let ds = DsRdata {
                        key_tag: tag as u16,
                        algorithm: 8,
                        digest_type: 2,
                        digest: vec![tag; 32],
                    };
                    let ok = registry.set_ds(by, &name, &[ds]).is_ok();
                    let row = shadow.entry(name).or_default();
                    assert_eq!(ok, row.sponsor.is_some(), "set_ds acceptance");
                    if ok {
                        row.generation += 1;
                    }
                }
                RegistryAction::DropDs { idx } => {
                    let name = pool_name(idx);
                    let by = shadow
                        .get(&name)
                        .and_then(|r| r.sponsor)
                        .unwrap_or(RegistrarId(1));
                    let ok = registry.remove_ds(by, &name).is_ok();
                    let row = shadow.entry(name).or_default();
                    assert_eq!(ok, row.sponsor.is_some(), "remove_ds acceptance");
                    if ok {
                        row.generation += 1;
                    }
                }
                RegistryAction::ChangeNs { idx } => {
                    let name = pool_name(idx);
                    let by = shadow
                        .get(&name)
                        .and_then(|r| r.sponsor)
                        .unwrap_or(RegistrarId(1));
                    let hosts = [Name::parse("ns2.other.net").unwrap()];
                    let ok = registry.set_ns(by, &name, &hosts).is_ok();
                    let row = shadow.entry(name).or_default();
                    assert_eq!(ok, row.sponsor.is_some(), "set_ns acceptance");
                    if ok {
                        row.generation += 1;
                    }
                }
            }
            check_against_shadow(&registry, &shadow);
        }
    }
}

// ---------------------------------------------------------------------------
// World-level: arbitrary customer mutations, then CSV equality between the
// in-memory campaign store and the streamed spill-and-replay store.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WorldAction {
    Purchase { label: u8, registrar: u8, tld: u8 },
    EnableDnssec { idx: u8 },
    UploadRealDs { idx: u8 },
    UploadGarbageDs { idx: u8 },
    Tick,
}

fn world_action() -> impl Strategy<Value = WorldAction> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(label, registrar, tld)| WorldAction::Purchase { label, registrar, tld }),
        any::<u8>().prop_map(|idx| WorldAction::EnableDnssec { idx }),
        any::<u8>().prop_map(|idx| WorldAction::UploadRealDs { idx }),
        any::<u8>().prop_map(|idx| WorldAction::UploadGarbageDs { idx }),
        Just(WorldAction::Tick),
    ]
}

/// Builds a world and replays `actions` over it; called twice per case so
/// the two scan paths each get an identically mutated world.
fn mutated_world(actions: &[WorldAction]) -> World {
    let mut world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let registrars = [
        world.add_registrar(
            "EqFull",
            Name::parse("eqfull.net").unwrap(),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Web { validates: true },
                tlds: ALL_TLDS
                    .iter()
                    .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                    .collect(),
            },
        ),
        world.add_registrar(
            "EqNone",
            Name::parse("eqnone.net").unwrap(),
            RegistrarPolicy::no_dnssec(&ALL_TLDS),
        ),
    ];

    let mut domains: Vec<Name> = Vec::new();
    let pick = |domains: &[Name], idx: u8| -> Option<Name> {
        if domains.is_empty() {
            None
        } else {
            Some(domains[idx as usize % domains.len()].clone())
        }
    };
    for action in actions {
        match action {
            WorldAction::Purchase { label, registrar, tld } => {
                let tld = ALL_TLDS[*tld as usize % ALL_TLDS.len()];
                let id = registrars[*registrar as usize % registrars.len()];
                if let Ok(domain) = world.purchase(
                    id,
                    &format!("eqw{label}"),
                    tld,
                    Hosting::Registrar { plan: Plan::Free },
                    "o@x",
                ) {
                    domains.push(domain);
                }
            }
            WorldAction::EnableDnssec { idx } => {
                if let Some(domain) = pick(&domains, *idx) {
                    let _ = world.enable_dnssec(&domain);
                }
            }
            WorldAction::UploadRealDs { idx } => {
                if let Some(domain) = pick(&domains, *idx) {
                    if let Some(keys) = world.domain(&domain).and_then(|d| d.keys.clone()) {
                        let ds = keys.ds(dsec::crypto::DigestType::Sha256);
                        let _ = world.upload_ds(&domain, ds, DsSubmission::Web);
                    }
                }
            }
            WorldAction::UploadGarbageDs { idx } => {
                if let Some(domain) = pick(&domains, *idx) {
                    let garbage = DsRdata {
                        key_tag: 9,
                        algorithm: 8,
                        digest_type: 2,
                        digest: vec![9; 32],
                    };
                    let _ = world.upload_ds(&domain, garbage, DsSubmission::Web);
                }
            }
            WorldAction::Tick => world.tick(),
        }
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn mutated_worlds_scan_identically_streamed_and_in_memory(
        actions in proptest::collection::vec(world_action(), 1..20),
        case in 0u32..u32::MAX,
    ) {
        let mut memory_world = mutated_world(&actions);
        let mut streamed_world = mutated_world(&actions);

        let config = CampaignConfig::new(memory_world.today.plus_days(14), 7);
        let mut memory_cache = ScanCache::new();
        let memory = scan_campaign_cached(&mut memory_world, &config, &mut memory_cache);

        let spill = std::env::temp_dir().join(format!(
            "dsec-equivalence-{}-{case}.snap",
            std::process::id()
        ));
        let mut streamed_cache = ScanCache::new();
        let streamed =
            scan_campaign_streamed(&mut streamed_world, &config, &mut streamed_cache, &spill)
                .expect("streamed campaign completes");

        let operators: std::collections::BTreeSet<String> = memory
            .snapshots()
            .iter()
            .flat_map(|s| s.cells.keys().map(|(op, _)| op.clone()))
            .collect();
        for op in &operators {
            assert_eq!(
                streamed.to_csv(op).expect("replay CSV"),
                memory.to_csv(op),
                "{op}: legacy CSV diverged between streamed and in-memory paths"
            );
            assert_eq!(
                streamed.to_csv_extended(op).expect("replay CSV"),
                memory.to_csv_extended(op),
                "{op}: extended CSV diverged between streamed and in-memory paths"
            );
        }
        std::fs::remove_file(&spill).ok();
    }
}
