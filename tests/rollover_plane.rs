//! End-to-end tests of the key-rollover lifecycle plane: the abrupt
//! break-then-repair cycle observed through the resolver, the scheduled
//! driver's day-by-day validation guarantees, and property tests pinning
//! that correctly sequenced plans never open a bogus window.

use proptest::prelude::*;

use dsec::crypto::DigestType;
use dsec::dnssec::{classify, DeploymentStatus, Misconfiguration};
use dsec::ecosystem::{
    DsTiming, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, RolloverPlan,
    RolloverStyle, SimDate, Tld, TldPolicy, TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::wire::Name;

fn full_registrar_world() -> (World, Name) {
    let mut world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let registrar = world.add_registrar(
        "RollReg",
        Name::parse("rollreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let domain = world
        .purchase(
            registrar,
            "roller",
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "owner@example.org",
        )
        .unwrap();
    (world, domain)
}

fn status(world: &World, domain: &Name) -> DeploymentStatus {
    let obs = world.observation_of(domain);
    classify(domain, &obs, world.today.epoch_seconds())
}

/// The classic broken rollover, repaired: an abrupt key replacement
/// leaves the parent DS orphaned (Bogus at every validator), until the
/// registrar pushes the matching DS — at which point the chain is whole
/// again. The event log carries both halves of the story.
#[test]
fn abrupt_roll_goes_bogus_until_the_ds_is_fixed() {
    let (mut world, domain) = full_registrar_world();
    assert_eq!(status(&world, &domain), DeploymentStatus::FullyDeployed);

    world.roll_keys_abrupt(&domain).unwrap();
    assert_eq!(
        status(&world, &domain),
        DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch),
        "orphaned DS must fail validation"
    );
    assert_eq!(world.events.count("rollover_abrupt"), 1);

    // The repair: the sponsoring registrar replaces the parent DS with
    // one matching the keys actually served.
    let sponsor = world.domain(&domain).unwrap().sponsor;
    let ds = world
        .domain(&domain)
        .unwrap()
        .keys
        .as_ref()
        .unwrap()
        .ds(DigestType::Sha256);
    world
        .registry_mut(Tld::Com)
        .set_ds(sponsor, &domain, &[ds])
        .unwrap();
    assert_eq!(
        status(&world, &domain),
        DeploymentStatus::FullyDeployed,
        "matching DS restores the chain"
    );
}

/// A correctly scheduled double-signature rollover versus a mistimed
/// one, through the same world API the experiments drive: the correct
/// plan validates on every single day; the late-DS plan goes bogus on
/// exactly the days its arithmetic predicts.
#[test]
fn scheduled_rollover_day_by_day_matches_the_plan_arithmetic() {
    for timing in [DsTiming::OnSchedule, DsTiming::Late { days: 4 }] {
        let (mut world, domain) = full_registrar_world();
        let plan = RolloverPlan::correct(
            RolloverStyle::DoubleSignatureKsk,
            world.today.plus_days(1),
        )
        .with_ds_timing(timing);
        let last = plan
            .actual_swap()
            .unwrap_or_else(|| plan.completion())
            .plus_days(1);
        world.schedule_rollover(&domain, plan.clone()).unwrap();
        while world.today < last {
            world.tick();
            let expected = if plan.is_bogus_on(world.today) {
                DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
            } else {
                DeploymentStatus::FullyDeployed
            };
            assert_eq!(
                status(&world, &domain),
                expected,
                "{timing:?} on {:?}",
                world.today
            );
        }
    }
}

proptest! {
    /// A correctly sequenced plan — any style, any intervals, the DS
    /// landing anywhere inside the double-signature window — never has
    /// a bogus day, from well before the rollover to well after.
    #[test]
    fn correctly_sequenced_plans_never_yield_a_bogus_day(
        start in 0u32..5_000,
        prepare in 1u32..30,
        retire in 1u32..30,
        style_idx in 0usize..3,
        timing_kind in 0u32..3,
        days_seed in any::<u32>(),
    ) {
        let style = [
            RolloverStyle::PrePublishZsk,
            RolloverStyle::DoubleSignatureKsk,
            RolloverStyle::Algorithm,
        ][style_idx];
        let mut plan = RolloverPlan::correct(style, SimDate(start));
        plan.prepare_days = prepare;
        plan.retire_days = retire;
        // Any timing inside the double-signature window is safe: up to
        // `prepare` days early (still ≥ start) or `retire` days late
        // (still ≤ completion).
        let plan = plan.with_ds_timing(match timing_kind {
            0 => DsTiming::OnSchedule,
            1 => DsTiming::Early { days: days_seed % (prepare + 1) },
            _ => DsTiming::Late { days: days_seed % (retire + 1) },
        });

        prop_assert!(plan.bogus_window().is_none(), "{plan:?}");
        for day in start.saturating_sub(3)..=plan.completion().0 + retire + 3 {
            prop_assert!(!plan.is_bogus_on(SimDate(day)), "{plan:?} bogus on day {day}");
        }
    }

    /// Mistimed plans open exactly one window, and `is_bogus_on` agrees
    /// with it everywhere: bogus days are precisely the in-window days.
    #[test]
    fn bogus_window_and_is_bogus_on_agree(
        start in 0u32..5_000,
        prepare in 1u32..30,
        retire in 1u32..30,
        early_extra in 1u32..20,
        late_extra in 1u32..20,
        use_late in any::<bool>(),
        never in any::<bool>(),
    ) {
        let mut plan = RolloverPlan::correct(RolloverStyle::DoubleSignatureKsk, SimDate(start));
        plan.prepare_days = prepare;
        plan.retire_days = retire;
        let plan = plan.with_ds_timing(if never {
            DsTiming::Never
        } else if use_late {
            DsTiming::Late { days: retire + late_extra }
        } else {
            DsTiming::Early { days: prepare + early_extra }
        });

        let window = plan.bogus_window();
        // A genuinely mistimed DS (outside [start, completion]) must
        // open a window — except Early swaps clamped at day 0, which
        // can still land on/after start and stay safe.
        if let Some((from, until)) = window {
            prop_assert!(until.map(|u| from < u).unwrap_or(true), "empty window {plan:?}");
        } else {
            // The only windowless mistiming: an Early swap clamped at
            // day 0 when the plan itself starts at day 0.
            prop_assert!(
                matches!(plan.ds_timing, DsTiming::Early { .. }) && start == 0,
                "only a clamped early swap may be windowless: {plan:?}"
            );
        }
        let horizon = plan.completion().0 + retire + late_extra + 5;
        for day in 0..=horizon {
            let inside = match window {
                None => false,
                Some((from, None)) => SimDate(day) >= from,
                Some((from, Some(until))) => SimDate(day) >= from && SimDate(day) < until,
            };
            prop_assert_eq!(plan.is_bogus_on(SimDate(day)), inside);
        }
    }
}
