//! Probe ↔ ecosystem consistency: for a grid of registrar policies, the
//! customer-perspective probe must rediscover exactly the configured
//! behavior. This is the reproduction's core soundness property — the
//! tables are *measured*, so measurement and configuration must agree.

use dsec::ecosystem::{
    ExternalDs, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy, TldRole, World, WorldConfig,
    ALL_TLDS,
};
use dsec::probe::{probe_registrar, DsChannel, Finding};
use dsec::wire::Name;

fn world() -> World {
    World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    })
}

fn uniform_policy(operator: OperatorDnssec, external: ExternalDs) -> RegistrarPolicy {
    RegistrarPolicy {
        operator_dnssec: operator,
        external_ds: external,
        tlds: ALL_TLDS
            .iter()
            .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
            .collect(),
    }
}

/// Every (operator policy × channel) combination probes back to the
/// expected findings.
#[test]
fn probe_rediscovers_the_policy_grid() {
    let operator_policies = [
        OperatorDnssec::Unsupported,
        OperatorDnssec::Default,
        OperatorDnssec::DefaultOnPlans(vec![Plan::Premium]),
        OperatorDnssec::OptIn { adoption_rate: 0.1 },
        OperatorDnssec::Paid {
            cents_per_year: 3500,
            adoption_rate: 0.001,
        },
    ];
    let channels = [
        ExternalDs::Unsupported,
        ExternalDs::Web { validates: true },
        ExternalDs::Web { validates: false },
        ExternalDs::Email {
            verifies_sender: true,
            accepts_foreign_sender: false,
            validates: false,
        },
        ExternalDs::Email {
            verifies_sender: false,
            accepts_foreign_sender: false,
            validates: true,
        },
        ExternalDs::Ticket,
        ExternalDs::FetchDnskey,
    ];

    let mut w = world();
    let mut cases = Vec::new();
    for (i, op) in operator_policies.iter().enumerate() {
        for (j, ch) in channels.iter().enumerate() {
            let name = format!("Grid{i}{j}");
            let ns = Name::parse(&format!("grid{i}{j}.net")).unwrap();
            let id = w.add_registrar(&name, ns, uniform_policy(op.clone(), ch.clone()));
            cases.push((id, op.clone(), ch.clone()));
        }
    }

    for (id, op, ch) in cases {
        let report = probe_registrar(&mut w, id);
        let ctx = format!("{op:?} × {ch:?}");

        // Operator-side findings.
        match &op {
            OperatorDnssec::Unsupported => {
                assert_eq!(report.operator_support, Finding::No, "{ctx}");
            }
            OperatorDnssec::Default => {
                assert_eq!(report.dnssec_default, Finding::Yes, "{ctx}");
                assert_eq!(report.hosted_fully_deployed, Finding::Yes, "{ctx}");
            }
            OperatorDnssec::DefaultOnPlans(_) => {
                assert_eq!(report.dnssec_default, Finding::Partial, "{ctx}");
            }
            OperatorDnssec::OptIn { .. } => {
                assert_eq!(report.dnssec_default, Finding::No, "{ctx}");
                assert_eq!(report.dnssec_optin, Finding::Yes, "{ctx}");
            }
            OperatorDnssec::Paid { cents_per_year, .. } => {
                assert_eq!(report.dnssec_paid_cents, Some(*cents_per_year), "{ctx}");
            }
        }

        // Channel-side findings.
        match &ch {
            ExternalDs::Unsupported => {
                assert_eq!(report.external_support, Finding::No, "{ctx}");
                assert_eq!(report.ds_channel, None, "{ctx}");
            }
            ExternalDs::Web { validates } => {
                assert_eq!(report.ds_channel, Some(DsChannel::Web), "{ctx}");
                let expected = if *validates { Finding::Yes } else { Finding::No };
                assert_eq!(report.validates_ds, expected, "{ctx}");
            }
            ExternalDs::Email {
                verifies_sender,
                validates,
                ..
            } => {
                assert_eq!(report.ds_channel, Some(DsChannel::Email), "{ctx}");
                let expected = if *verifies_sender { Finding::Yes } else { Finding::No };
                assert_eq!(report.verifies_email, expected, "{ctx}");
                let expected = if *validates { Finding::Yes } else { Finding::No };
                assert_eq!(report.validates_ds, expected, "{ctx}");
            }
            ExternalDs::Ticket => {
                assert_eq!(report.ds_channel, Some(DsChannel::Ticket), "{ctx}");
                assert_eq!(report.validates_ds, Finding::No, "{ctx}");
            }
            ExternalDs::FetchDnskey => {
                assert_eq!(report.ds_channel, Some(DsChannel::FetchDnskey), "{ctx}");
                assert_eq!(report.validates_ds, Finding::Yes, "{ctx}");
            }
            ExternalDs::Chat { .. } => unreachable!("not in this grid"),
        }

        // Cross-cutting invariant: a working external channel completes a
        // full deployment unless the registrar never publishes DS.
        if report.external_support == Finding::Yes {
            assert_eq!(report.external_fully_deployed, Finding::Yes, "{ctx}");
        }
    }
}

/// Per-TLD DS publication is rediscovered TLD by TLD.
#[test]
fn probe_rediscovers_per_tld_ds_publication() {
    let mut w = world();
    for home in [Tld::Se, Tld::Nl] {
        let mut tlds: std::collections::BTreeMap<Tld, TldPolicy> = ALL_TLDS
            .iter()
            .map(|&t| (t, TldPolicy::without_ds(TldRole::Registrar)))
            .collect();
        tlds.insert(home, TldPolicy::full(TldRole::Registrar));
        let name = format!("Home{home}");
        let id = w.add_registrar(
            &name,
            Name::parse(&format!("home{}.net", home.label())).unwrap(),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Web { validates: false },
                tlds,
            },
        );
        let report = probe_registrar(&mut w, id);
        for tld in ALL_TLDS {
            assert_eq!(
                report.publishes_ds.get(&tld),
                Some(&(tld == home)),
                "{name} {tld}"
            );
        }
    }
}

/// Resellers behave like their partner at the registry, and the probe
/// cannot tell the difference from the outside — matching the paper's
/// observation that the reseller relationship is invisible to customers.
#[test]
fn reseller_probe_matches_direct_registrar_probe() {
    let mut w = world();
    let _partner = w.add_registrar(
        "Partner",
        Name::parse("partner.net").unwrap(),
        RegistrarPolicy::no_dnssec(&ALL_TLDS),
    );
    let direct = w.add_registrar(
        "Direct",
        Name::parse("direct-reg.net").unwrap(),
        uniform_policy(OperatorDnssec::Default, ExternalDs::Web { validates: false }),
    );
    let reseller = w.add_registrar(
        "Resold",
        Name::parse("resold.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: false },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::ResellerVia("Partner".into()))))
                .collect(),
        },
    );
    let direct_report = probe_registrar(&mut w, direct);
    let resold_report = probe_registrar(&mut w, reseller);
    assert_eq!(direct_report.dnssec_default, resold_report.dnssec_default);
    assert_eq!(
        direct_report.hosted_fully_deployed,
        resold_report.hosted_fully_deployed
    );
    assert_eq!(direct_report.external_support, resold_report.external_support);
}
