//! The reproduction's strongest cross-check: for every domain in a paper
//! population, the *passive* classification (what the scanner computes
//! from records) must agree with the *active* verdict of an independent
//! validating resolver walking the chain from the root.

use dsec::dnssec::{classify, DeploymentStatus, Misconfiguration};
use dsec::resolver::{Resolver, Security};
use dsec::wire::{Rcode, RrType};
use dsec::workloads::{build, PopulationConfig};

#[test]
fn classification_agrees_with_resolver_verdict() {
    let pw = build(&PopulationConfig::tiny());
    let world = &pw.world;
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let now = world.today.epoch_seconds();

    let mut checked = 0usize;
    for domain in world.domains().map(|d| d.name.clone()) {
        let status = classify(&domain, &world.observation_of(&domain), now);
        // Resolve the domain's www name end to end. Some hosting
        // arrangements (unsigned bulk domains) have no materialized zone:
        // the query terminates with REFUSED, which a validator treats as
        // an (insecure) resolution failure, not bogus data.
        let answer = resolver
            .resolve(&domain.child("www").unwrap(), RrType::A, now)
            .expect("resolution completes");
        match status {
            DeploymentStatus::FullyDeployed => {
                assert_eq!(
                    answer.security,
                    Security::Secure,
                    "{domain}: fully deployed must validate"
                );
                assert_eq!(answer.records.len(), 1, "{domain}");
            }
            DeploymentStatus::PartiallyDeployed | DeploymentStatus::NotDeployed => {
                assert_eq!(
                    answer.security,
                    Security::Insecure,
                    "{domain}: {status:?} must be insecure, never bogus"
                );
            }
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch) => {
                assert_eq!(answer.rcode, Rcode::ServFail, "{domain}: broken chain");
            }
            other => panic!("{domain}: unexpected population state {other:?}"),
        }
        checked += 1;
    }
    assert!(checked > 100, "checked {checked} domains");
}
