//! # dsec — Understanding the Role of Registrars in DNSSEC Deployment
//!
//! A from-scratch Rust reproduction of Chung et al., *Understanding the
//! Role of Registrars in DNSSEC Deployment* (IMC 2017): a full DNSSEC
//! stack (wire format, crypto, signing, validation), a simulated
//! registration ecosystem (registries, registrars, resellers, third-party
//! operators), the OpenINTEL-style longitudinal scanner, and the
//! customer-perspective registrar probe — plus the harnesses that
//! regenerate every table and figure in the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module alias.
//!
//! ```
//! use dsec::wire::{Name, RrType};
//!
//! let name = Name::parse("example.com").unwrap();
//! assert_eq!(name.to_string(), "example.com.");
//! assert_eq!(RrType::Dnskey.number(), 48);
//! ```
//!
//! The fastest way in is [`core::run_study`]; see `examples/quickstart.rs`
//! for a guided tour.

#![warn(missing_docs)]

/// DNS data model and wire format (`dsec-wire`).
pub use dsec_wire as wire;

/// From-scratch crypto: bignum, SHA, RSA (`dsec-crypto`).
pub use dsec_crypto as crypto;

/// DNSSEC engine: signing, validation, CDS (`dsec-dnssec`).
pub use dsec_dnssec as dnssec;

/// Authoritative serving and the in-memory network (`dsec-authserver`).
pub use dsec_authserver as authserver;

/// Validating iterative resolver (`dsec-resolver`).
pub use dsec_resolver as resolver;

/// The simulated registration world (`dsec-ecosystem`).
pub use dsec_ecosystem as ecosystem;

/// Paper-calibrated population profiles (`dsec-workloads`).
pub use dsec_workloads as workloads;

/// OpenINTEL-style measurement pipeline (`dsec-scanner`).
pub use dsec_scanner as scanner;

/// The user-traffic plane: query load generation, outcome accounting,
/// and latency telemetry (`dsec-traffic`).
pub use dsec_traffic as traffic;

/// The registrar-compromise attack plane: scheduled forged DS/NS
/// takeovers, attacker authorities, and detection/remediation.
pub use dsec_attack as attack;

/// The §5.1 registrar probe harness (`dsec-probe`).
pub use dsec_probe as probe;

/// Table/figure renderers and paper checkpoints (`dsec-reports`).
pub use dsec_reports as reports;

/// The study orchestration (`dsec-core`).
pub use dsec_core as core;
